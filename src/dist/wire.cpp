#include "dist/wire.h"

#include <cmath>

#include "obs/trace.h"
#include "util/checksum.h"

namespace compsynth::dist {

namespace {

using obs::JsonObject;
using obs::JsonValue;

const JsonValue* find(const JsonObject& obj, const std::string& key) {
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

/// Reads a required non-negative integer-valued number field. Numbers ride
/// JSON doubles, exact up to 2^53 — far beyond any candidate-space size.
bool read_int(const JsonObject& obj, const std::string& key, long long* out,
              std::string* why) {
  const JsonValue* v = find(obj, key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    *why = "missing or non-numeric '" + key + "'";
    return false;
  }
  if (v->num != std::floor(v->num) || std::abs(v->num) > 9.0e15) {
    *why = "non-integral '" + key + "'";
    return false;
  }
  *out = static_cast<long long>(v->num);
  return true;
}

bool read_str(const JsonObject& obj, const std::string& key, std::string* out,
              std::string* why) {
  const JsonValue* v = find(obj, key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    *why = "missing or non-string '" + key + "'";
    return false;
  }
  *out = v->str;
  return true;
}

}  // namespace

const char* wire_verb_name(WireVerb verb) {
  switch (verb) {
    case WireVerb::kHello:
      return "hello";
    case WireVerb::kPing:
      return "ping";
    case WireVerb::kShard:
      return "shard";
    case WireVerb::kShutdown:
      return "shutdown";
  }
  return "ping";
}

std::optional<WireVerb> parse_wire_verb(std::string_view name) {
  if (name == "hello") return WireVerb::kHello;
  if (name == "ping") return WireVerb::kPing;
  if (name == "shard") return WireVerb::kShard;
  if (name == "shutdown") return WireVerb::kShutdown;
  return std::nullopt;
}

std::variant<WireRequest, serve::ParseError> parse_wire_request(
    std::string_view line) {
  const std::optional<JsonObject> parsed = obs::parse_flat_json(line);
  if (!parsed) {
    return serve::ParseError{serve::kErrParse, "not a flat JSON object"};
  }
  std::string verb_text;
  std::string why;
  if (!read_str(*parsed, "verb", &verb_text, &why)) {
    return serve::ParseError{serve::kErrVerb, "missing verb"};
  }
  const std::optional<WireVerb> verb = parse_wire_verb(verb_text);
  if (!verb) {
    return serve::ParseError{serve::kErrVerb, "unknown verb: " + verb_text};
  }
  WireRequest req;
  req.verb = *verb;
  if (req.verb != WireVerb::kShard) return req;

  ShardRequest& s = req.shard;
  long long shard = 0;
  long long lo = 0;
  long long hi = 0;
  if (!read_str(*parsed, "job", &s.job, &why) ||
      !read_int(*parsed, "shard", &shard, &why) ||
      !read_int(*parsed, "lo", &lo, &why) ||
      !read_int(*parsed, "hi", &hi, &why) ||
      !read_str(*parsed, "sketch", &s.sketch, &why) ||
      !read_str(*parsed, "graph", &s.graph, &why)) {
    return serve::ParseError{serve::kErrField, why};
  }
  if (shard < 0 || lo < 0 || hi <= lo) {
    return serve::ParseError{serve::kErrField, "bad shard range"};
  }
  s.shard = static_cast<std::size_t>(shard);
  s.lo = lo;
  s.hi = hi;
  if (const JsonValue* tie = find(*parsed, "tie");
      tie != nullptr && tie->kind == JsonValue::Kind::kNumber) {
    s.tie = tie->num;
  }
  return req;
}

std::string render_shard_request(const ShardRequest& req) {
  serve::JsonWriter w;
  w.integer("v", kWireVersion)
      .str("verb", "shard")
      .str("job", req.job)
      .integer("shard", static_cast<long long>(req.shard))
      .integer("lo", req.lo)
      .integer("hi", req.hi)
      .num("tie", req.tie)
      .str("sketch", req.sketch)
      .str("graph", req.graph);
  return w.done();
}

std::string render_simple_request(WireVerb verb) {
  serve::JsonWriter w;
  w.integer("v", kWireVersion).str("verb", wire_verb_name(verb));
  return w.done();
}

std::optional<ShardResponse> parse_shard_response(std::string_view line,
                                                  std::string* why) {
  const std::optional<JsonObject> parsed = obs::parse_flat_json(line);
  if (!parsed) {
    *why = "response is not a flat JSON object";
    return std::nullopt;
  }
  ShardResponse resp;
  const JsonValue* ok = find(*parsed, "ok");
  if (ok == nullptr || ok->kind != JsonValue::Kind::kBool) {
    *why = "missing or non-boolean 'ok'";
    return std::nullopt;
  }
  resp.ok = ok->b;
  if (!resp.ok) {
    // Error responses only need code + message; pass them through so the
    // coordinator's worker_fail event can say what the worker said.
    read_str(*parsed, "code", &resp.code, why);
    read_str(*parsed, "error", &resp.error, why);
    return resp;
  }
  long long shard = 0;
  long long lo = 0;
  long long hi = 0;
  long long count = 0;
  std::string crc;
  if (!read_str(*parsed, "job", &resp.job, why) ||
      !read_int(*parsed, "shard", &shard, why) ||
      !read_int(*parsed, "lo", &lo, why) ||
      !read_int(*parsed, "hi", &hi, why) ||
      !read_int(*parsed, "count", &count, why) ||
      !read_str(*parsed, "crc", &crc, why) ||
      !read_str(*parsed, "blob", &resp.blob, why)) {
    return std::nullopt;
  }
  if (shard < 0 || count < 0) {
    *why = "negative 'shard' or 'count'";
    return std::nullopt;
  }
  resp.shard = static_cast<std::size_t>(shard);
  resp.lo = lo;
  resp.hi = hi;
  resp.count = count;
  if (const JsonValue* secs = find(*parsed, "secs");
      secs != nullptr && secs->kind == JsonValue::Kind::kNumber) {
    resp.secs = secs->num;
  }
  const std::string actual = util::crc32_hex(util::crc32(resp.blob));
  if (actual != crc) {
    *why = "blob CRC mismatch: header " + crc + " vs computed " + actual;
    return std::nullopt;
  }
  return resp;
}

}  // namespace compsynth::dist
