# CTest script: checkpointed run, simulated crash, recovery, resume — and
# the resumed run must converge to the same objective as an uninterrupted
# run with the identical configuration.
set(DIR "${WORKDIR}/session_kill_resume")
set(REF_DIR "${WORKDIR}/session_kill_resume_ref")
file(REMOVE_RECURSE "${DIR}" "${REF_DIR}")
set(TARGET_EXPR "if throughput >= 2 && latency <= 60 then throughput - 2*throughput*latency + 1000 else throughput - 4*throughput*latency")

# Reference: uninterrupted run.
execute_process(
  COMMAND "${SESSION}" run "${SKETCH}" --backend grid --quiet --seed 5
          --dir "${REF_DIR}" --target "${TARGET_EXPR}"
  RESULT_VARIABLE ref_status OUTPUT_VARIABLE ref_out)
if(NOT ref_status EQUAL 0)
  message(FATAL_ERROR "reference run: expected convergence (0), got ${ref_status}: ${ref_out}")
endif()
string(REGEX MATCH "converged:[^\n]*\n[^\n]*" ref_objective "${ref_out}")

# Crash after the iteration-2 checkpoint.
execute_process(
  COMMAND "${SESSION}" run "${SKETCH}" --backend grid --quiet --seed 5
          --dir "${DIR}" --stop-after 2 --target "${TARGET_EXPR}"
  RESULT_VARIABLE crash_status)
if(NOT crash_status EQUAL 42)
  message(FATAL_ERROR "crashed run: expected simulated-crash exit 42, got ${crash_status}")
endif()

# Inspect must read the surviving snapshot.
execute_process(
  COMMAND "${SESSION}" inspect "${DIR}"
  RESULT_VARIABLE inspect_status OUTPUT_VARIABLE inspect_out)
if(NOT inspect_status EQUAL 0)
  message(FATAL_ERROR "inspect failed (${inspect_status}): ${inspect_out}")
endif()
if(NOT inspect_out MATCHES "iteration:   2")
  message(FATAL_ERROR "inspect did not report iteration 2: ${inspect_out}")
endif()

# Resume to convergence; the objective must match the reference run's.
execute_process(
  COMMAND "${SESSION}" resume "${SKETCH}" --backend grid --quiet --seed 5
          --dir "${DIR}" --target "${TARGET_EXPR}"
  RESULT_VARIABLE resume_status OUTPUT_VARIABLE resume_out)
if(NOT resume_status EQUAL 0)
  message(FATAL_ERROR "resumed run: expected convergence (0), got ${resume_status}: ${resume_out}")
endif()
string(REGEX MATCH "converged:[^\n]*\n[^\n]*" resume_objective "${resume_out}")
if(NOT resume_objective STREQUAL ref_objective)
  message(FATAL_ERROR "resumed objective differs from the uninterrupted run:\n"
                      "reference: ${ref_objective}\nresumed:  ${resume_objective}")
endif()

# A mismatched resume configuration must be refused.
execute_process(
  COMMAND "${SESSION}" resume "${SKETCH}" --backend grid --quiet --seed 6
          --dir "${DIR}" --target "${TARGET_EXPR}"
  RESULT_VARIABLE mismatch_status ERROR_VARIABLE mismatch_err)
if(mismatch_status EQUAL 0)
  message(FATAL_ERROR "resume with a different seed should have been refused")
endif()
if(NOT mismatch_err MATCHES "refusing to resume")
  message(FATAL_ERROR "expected a refusal diagnostic, got: ${mismatch_err}")
endif()
