// Portfolio finder: GridFinder and Z3Finder racing on the same query.
//
// The two back-ends have complementary cost profiles: the grid's explicit
// version space answers most mid-loop queries in microseconds but its
// "unique ranking" verdict is approximate, while Z3 is authoritative but
// pays solver time on every query. The portfolio runs both and takes the
// first decisive answer — in practice the grid wins the find-a-pair rounds
// and Z3 settles the endgame, giving grid-like latency with solver-grade
// convergence (docs/SOLVER.md §Portfolio).
//
// Modes:
//   kRace     both legs run concurrently (the Z3 leg on a
//             util::ThreadPool::submit task, the grid leg on the caller);
//             the loser is cancelled via Z3Finder::interrupt() /
//             GridFinder::set_cancel_flag(). Fast but NOT
//             replay-deterministic: a cancelled grid search still consumed
//             RNG draws for the pairs it examined before the flag flipped,
//             so a rerun may ask different questions.
//   kPinGrid  every query is answered by the grid leg alone.
//   kPinZ3    every query is answered by the Z3 leg alone.
// The pinned modes are pure delegation — byte-identical verdicts, models
// and query sequences to running that back-end by itself — which is what
// the differential tests pin down. kRace is the performance mode.
#pragma once

#include <memory>
#include <string>

#include "solver/finder.h"
#include "solver/grid_finder.h"
#include "solver/z3_finder.h"

namespace compsynth::solver {

enum class PortfolioMode {
  kRace,     // both legs concurrently, first decisive answer wins
  kPinGrid,  // deterministic: grid leg only
  kPinZ3,    // deterministic: Z3 leg only
};

struct PortfolioConfig {
  /// Configuration of the grid leg; `grid.base` (margins, timeout, retry,
  /// incremental, interval_precheck) doubles as the Z3 leg's FinderConfig
  /// so the two legs always agree on the query semantics. In kRace mode a
  /// `grid.threads` of 0 is forced to 1: the shared pool is running the Z3
  /// leg, and a parallel_for queued behind it would serialize the race on
  /// small pools.
  GridFinderConfig grid;
  PortfolioMode mode = PortfolioMode::kRace;
};

class PortfolioFinder final : public CandidateFinder {
 public:
  explicit PortfolioFinder(sketch::Sketch sketch, PortfolioConfig config = {},
                           Viability viability = {}, ScenarioDomain domain = {});

  FinderResult find_distinguishing(const pref::PreferenceGraph& graph,
                                   int num_pairs) override;

  /// kPinZ3 delegates to the Z3 leg; every other mode uses the grid leg,
  /// whose answer is exact and instant once its version space is synced.
  std::optional<sketch::HoleAssignment> find_consistent(
      const pref::PreferenceGraph& graph) override;

  void set_run_context(const obs::RunContext* ctx) override;

  /// The legs, for wiring that targets one back-end specifically (solver
  /// cache, fault injectors, query logs).
  GridFinder& grid() { return *grid_; }
  Z3Finder& z3() { return *z3_; }
  PortfolioMode mode() const { return config_.mode; }

  /// Durable-session persistence: both legs' states, length-prefixed.
  std::string save_state() const override;
  void restore_state(const std::string& state) override;

 private:
  FinderResult race(const pref::PreferenceGraph& graph, int num_pairs);

  PortfolioConfig config_;
  std::unique_ptr<GridFinder> grid_;
  std::unique_ptr<Z3Finder> z3_;
};

}  // namespace compsynth::solver
