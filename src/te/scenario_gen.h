// Bridges the TE substrate and the comparative synthesizer.
//
// Runs allocators over a topology/workload to produce *candidate designs*,
// each summarized by the metric pair the SWAN sketch reasons about
// (total throughput, traffic-weighted latency). This implements the paper's
// §6.1 "tractability" suggestion: generate multiple good designs with
// tractable objectives, then pick among them with the learned objective.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "pref/scenario.h"
#include "sketch/ast.h"
#include "te/allocator.h"
#include "util/rng.h"

namespace compsynth::te {

/// Projects an allocation onto the SWAN sketch's metric space.
pref::Scenario to_scenario(const Allocation& alloc);

/// Projects an allocation onto the flow-level swan_fair_sketch metric space:
/// (total throughput, traffic-weighted latency, min over flows of
/// delivered/demand). Zero-demand flows are ignored for the fairness floor;
/// an allocation with no demand at all reports min_frac = 1.
pref::Scenario to_fair_scenario(const Allocation& alloc,
                                const std::vector<FlowRequest>& requests);

/// One network design produced by a concrete allocator configuration.
struct CandidateDesign {
  std::string label;   // e.g. "swan eps=0.02"
  double knob = 0;     // the parameter that produced it
  Allocation allocation;
  pref::Scenario scenario;
};

/// Projects an allocation onto the multi-class swan_priority_sketch metric
/// space: (aggregate rate of flows with priority > 0, aggregate rate of
/// priority-0 flows, traffic-weighted latency), clamped to sketch ranges.
pref::Scenario to_class_scenario(const Allocation& alloc,
                                 const std::vector<FlowRequest>& requests);

/// Multi-class designs: for each high:low weight ratio, a *weighted*
/// max-min allocation with high-priority flows carrying that weight; plus
/// one strict-priority design (SWAN's default policy) labelled "strict".
std::vector<CandidateDesign> sweep_class_weights(
    const Topology& topo, const std::vector<FlowRequest>& requests,
    std::span<const double> hi_class_weights);

/// Eq. (2.1) designs across a sweep of the epsilon knob.
std::vector<CandidateDesign> sweep_epsilon(const Topology& topo,
                                           const std::vector<FlowRequest>& requests,
                                           std::span<const double> epsilons);

/// Danna-balance designs across a sweep of the q_fair knob.
std::vector<CandidateDesign> sweep_fairness(const Topology& topo,
                                            const std::vector<FlowRequest>& requests,
                                            std::span<const double> q_fairs);

/// Index of the design a (learned) objective ranks highest.
/// Throws std::invalid_argument on an empty candidate list.
std::size_t pick_best(const sketch::Sketch& sketch,
                      const sketch::HoleAssignment& objective,
                      std::span<const CandidateDesign> designs);

/// A reproducible random workload: `flows` demands between distinct random
/// node pairs, each with k shortest-path tunnels.
std::vector<FlowRequest> random_workload(const Topology& topo, util::Rng& rng,
                                         std::size_t flows, double min_demand,
                                         double max_demand, int k_tunnels = 3);

}  // namespace compsynth::te
