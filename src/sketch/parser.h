// Recursive-descent parser for the sketch DSL.
//
// Grammar (EBNF; '#' comments run to end of line):
//
//   sketch    := "sketch" IDENT "(" metric { "," metric } ")"
//                "{" { holedecl } expr "}"
//   metric    := IDENT "in" "[" num "," num "]"
//   holedecl  := "hole" IDENT "in" "grid" "(" num "," num "," NUMBER ")" ";"
//                                            -- lo, step, count
//   expr      := orexpr
//   orexpr    := andexpr { "||" andexpr }
//   andexpr   := cmpexpr { "&&" cmpexpr }
//   cmpexpr   := addexpr [ ("<"|"<="|">"|">="|"=="|"!=") addexpr ]
//   addexpr   := mulexpr { ("+"|"-") mulexpr }
//   mulexpr   := unary { ("*"|"/") unary }
//   unary     := "-" unary | "!" unary | primary
//   primary   := NUMBER | "true" | "false" | IDENT | "(" expr ")"
//              | ("min"|"max") "(" expr "," expr ")"
//              | "if" expr "then" expr "else" expr
//              | "choose" IDENT "{" expr { "," expr } "}"
//   num       := [ "-" ] NUMBER
//
// "choose" is a *structural hole*: the named hole (which must be declared
// as grid(0, 1, N) for N alternatives) selects which alternative expression
// the objective uses — the §4.1 generalization where "even the exact
// functions ... could be left unspecified".
//
// Example (the paper's Fig. 2a SWAN sketch):
//
//   sketch swan(throughput in [0, 10], latency in [0, 200]) {
//     hole tp_thrsh in grid(0, 1, 11);
//     hole l_thrsh  in grid(0, 10, 21);
//     hole slope1   in grid(0, 1, 11);
//     hole slope2   in grid(0, 1, 11);
//     if throughput >= tp_thrsh && latency <= l_thrsh
//     then throughput - slope1*throughput*latency + 1000
//     else throughput - slope2*throughput*latency
//   }
//
// Identifiers in the body must name a declared metric or hole. The parsed
// sketch is type-checked by the Sketch constructor, so parse_sketch either
// returns a well-formed sketch or throws ParseError/TypeError.
#pragma once

#include <string_view>

#include "sketch/ast.h"
#include "sketch/lexer.h"

namespace compsynth::sketch {

/// Parses a complete sketch definition. Throws ParseError on grammar errors
/// (with source position) and TypeError on ill-typed bodies.
Sketch parse_sketch(std::string_view source);

/// A parsed-but-unvalidated sketch: the raw declarations and body exactly as
/// written, before the Sketch constructor's semantic validation (duplicate
/// names, inverted ranges, typechecking, selector grids). The static
/// analyzer (sketch/analyze.h) lints these so every problem in a file is
/// reported, not just the first one the constructor would throw on. All AST
/// nodes and declarations carry 1-based source positions.
struct RawSketch {
  std::string name;
  std::vector<MetricSpec> metrics;
  std::vector<HoleSpec> holes;
  ExprPtr body;
};

/// Parses a sketch definition without semantic validation. Throws only
/// ParseError (grammar-level problems); semantic checks are left to
/// analyze_expr or the Sketch constructor.
RawSketch parse_sketch_raw(std::string_view source);

/// Parses a standalone expression against existing declarations — used to
/// build oracles/targets over the same metric vocabulary as a sketch. The
/// expression is fully type-checked against the context declarations,
/// including choice selector grids (typecheck_expr_any); throws TypeError
/// when invalid.
ExprPtr parse_expr(std::string_view source, const Sketch& context);

}  // namespace compsynth::sketch
