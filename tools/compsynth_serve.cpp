// compsynth_serve — the synthesis-as-a-service daemon.
//
// Hosts many concurrent comparative-synthesis sessions in one process and
// serves them over the line-delimited JSON protocol of docs/SERVICE.md.
// Session state is durable under --root: every acked answer and every
// checkpoint hits disk before the ack, so killing the daemon (even -9) and
// restarting it on the same root resumes every session to the identical
// query sequence.
//
// Usage:
//   compsynth_serve --listen <endpoint> --root <dir> --sketch <file> [options]
//
// Options:
//   --listen E          unix:<path> or tcp:[host:]<port> (tcp:0 picks an
//                       ephemeral port; the chosen one is printed)
//   --root DIR          session state root (created if missing)
//   --sketch FILE       register a sketch (repeatable; the first becomes the
//                       default for create requests that name none)
//   --max-active N      resident-session bound; beyond it the least recently
//                       touched idle session swaps to disk (default 64,
//                       0 = unbounded)
//   --keep N            snapshots kept per session (default 4)
//   --every N           checkpoint every N iterations (default 1)
//   --workers N         advance worker threads (default 4; 1 = inline)
//   --grid-threads N    GridFinder threads per advance (default 1; see the
//                       nested-pool note in serve/session_host.h)
//   --fault-torn-write P  inject torn checkpoint writes with probability P
//                       (crash rehearsal; docs/PERSISTENCE.md §Fault
//                       injection)
//   --fault-seed N      fault-stream seed (default 1)
//   --trace FILE        append a JSONL trace (schema rev 1.4, serve.* events;
//                       docs/OBSERVABILITY.md)
//   --metrics           print the metrics registry as Markdown at exit
//
// The daemon prints "listening on <endpoint>" once the socket is bound —
// scripts wait for that line — and exits 0 after a `shutdown` request
// drains, 1 on usage or startup errors. SIGTERM and SIGINT drain gracefully:
// in-flight requests are answered, traces/metrics flushed, exit code 0.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "serve/session_host.h"
#include "serve/signal_drain.h"
#include "sketch/parser.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace {

using namespace compsynth;

struct Options {
  std::string listen;
  std::string root;
  std::vector<std::string> sketch_paths;
  int max_active = 64;
  int keep = 4;
  int every = 1;
  int workers = 4;
  int grid_threads = 1;
  double fault_torn_write = 0.0;
  std::uint64_t fault_seed = 1;
  std::optional<std::string> trace_path;
  bool print_metrics = false;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --listen <unix:PATH|tcp:[HOST:]PORT> --root <dir>"
               " --sketch <file> [--sketch <file>...]\n"
               "  [--max-active N] [--keep N] [--every N] [--workers N]\n"
               "  [--grid-threads N] [--fault-torn-write P] [--fault-seed N]\n"
               "  [--trace FILE] [--metrics]\n";
  return 1;
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--listen") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.listen = *v;
    } else if (arg == "--root") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.root = *v;
    } else if (arg == "--sketch") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.sketch_paths.push_back(*v);
    } else if (arg == "--max-active") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.max_active = std::stoi(*v);
    } else if (arg == "--keep") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.keep = std::stoi(*v);
    } else if (arg == "--every") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.every = std::stoi(*v);
    } else if (arg == "--workers") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.workers = std::stoi(*v);
    } else if (arg == "--grid-threads") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.grid_threads = std::stoi(*v);
    } else if (arg == "--fault-torn-write") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.fault_torn_write = std::stod(*v);
    } else if (arg == "--fault-seed") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.fault_seed = std::stoull(*v);
    } else if (arg == "--trace") {
      auto v = next();
      if (!v) return std::nullopt;
      opt.trace_path = *v;
    } else if (arg == "--metrics") {
      opt.print_metrics = true;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return std::nullopt;
    }
  }
  if (opt.listen.empty() || opt.root.empty() || opt.sketch_paths.empty()) {
    return std::nullopt;
  }
  return opt;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Options> opt = parse_args(argc, argv);
  if (!opt) return usage(argv[0]);

  try {
    obs::MetricsRegistry metrics;
    std::optional<obs::FileTraceSink> sink;
    if (opt->trace_path) sink.emplace(*opt->trace_path);

    obs::RunContext obs;
    obs.metrics = &metrics;
    obs.tracer = sink ? &*sink : nullptr;
    obs.run_id = "serve";

    util::ThreadPool pool(static_cast<std::size_t>(
        opt->workers < 1 ? 1 : opt->workers));

    serve::HostConfig host_config;
    host_config.root = opt->root;
    host_config.max_active = opt->max_active;
    host_config.keep_snapshots = opt->keep;
    host_config.checkpoint_every = opt->every;
    host_config.grid_threads = opt->grid_threads;
    host_config.checkpoint_faults.torn_write_p = opt->fault_torn_write;
    host_config.checkpoint_faults.seed = opt->fault_seed;
    host_config.obs = obs;
    host_config.pool = opt->workers > 1 ? &pool : nullptr;

    serve::SessionHost host(host_config);
    for (const std::string& path : opt->sketch_paths) {
      host.register_sketch(sketch::parse_sketch(read_file(path)));
    }

    serve::ServerConfig server_config;
    server_config.listen = opt->listen;
    server_config.obs = obs;
    serve::Server server(server_config, host);
    // Constructed before start() so every server thread inherits the signal
    // mask: SIGTERM/SIGINT initiate the same graceful drain as a shutdown
    // request (in-flight responses land, traces/metrics flush, exit 0).
    serve::SignalDrain drain([&server] { server.stop(); });
    server.start();
    std::cout << "listening on " << server.endpoint() << std::endl;

    server.wait();

    if (opt->print_metrics) std::cout << metrics.render_markdown();
    return 0;
  } catch (const std::exception& ex) {
    std::cerr << "compsynth_serve: " << ex.what() << "\n";
    return 1;
  }
}
