file(REMOVE_RECURSE
  "libcompsynth_pref.a"
)
