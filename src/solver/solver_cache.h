// Query cache in front of the SMT back-end (docs/SOLVER.md).
//
// The comparative-synthesis loop re-issues structurally identical solver
// queries whenever the preference graph revisits a state: a repair round
// that removes the offending edges, a resumed session replaying its tail, a
// bench re-running the same workload, or an oracle answer that adds nothing
// to G (duplicate edge / rejected contradiction). Z3 is deterministic over a
// fixed assertion sequence, so the result of such a re-query is fully
// determined by (sketch, G, domain, margins, query kind) — caching it and
// replaying the recorded answer is observationally identical to running the
// solver again, which is what keeps the cache transparent to differential
// tests (same objective, same oracle-query sequence, cache on or off).
//
// Keys are canonical strings (solver/z3_finder.cpp builds them from the
// printed sketch, the serialized graph and the printed domain constraint —
// all round-trip-stable representations); values are opaque blobs encoded by
// the finder. Known-UNSAT verdicts are cached exactly like satisfying
// assignments: a FinderResult with status kUniqueRanking / kNoCandidate (or
// an empty find_consistent answer) is just another value. kUnknown results
// are never stored — a timeout is not a verdict.
//
// Eviction is FIFO with a bounded entry count; insertion order is part of
// save_state so a restored cache evicts in the same order. The class is
// internally locked: the portfolio's Z3 leg may consult it from a pool
// thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace compsynth::solver {

class SolverCache {
 public:
  struct Stats {
    long long hits = 0;
    long long misses = 0;
    long long stores = 0;
    long long evictions = 0;
  };

  explicit SolverCache(std::size_t max_entries = 4096);

  /// The cached value blob for `key`, or nullopt. Bumps hit/miss counters.
  std::optional<std::string> lookup(const std::string& key) EXCLUDES(mutex_);

  /// Records `value` under `key`, evicting the oldest entry when full.
  /// Storing an existing key overwrites the value in place (no re-ordering).
  void store(const std::string& key, std::string value) EXCLUDES(mutex_);

  std::size_t size() const EXCLUDES(mutex_);
  std::size_t max_entries() const { return max_entries_; }
  Stats stats() const EXCLUDES(mutex_);

  /// Stable 64-bit FNV-1a of a key, for compact trace/report identifiers.
  static std::uint64_t key_hash(const std::string& key);

  /// Durable-session persistence (docs/PERSISTENCE.md, the @cache section):
  /// entries in insertion order plus the counters, length-prefixed so blobs
  /// may contain anything. restore_state replaces the whole cache and throws
  /// std::invalid_argument on malformed input, leaving the cache untouched.
  std::string save_state() const EXCLUDES(mutex_);
  void restore_state(const std::string& state) EXCLUDES(mutex_);

 private:
  const std::size_t max_entries_;
  mutable util::Mutex mutex_;
  std::unordered_map<std::string, std::string> entries_ GUARDED_BY(mutex_);
  /// FIFO eviction queue (insertion order).
  std::deque<std::string> order_ GUARDED_BY(mutex_);
  Stats stats_ GUARDED_BY(mutex_);
};

}  // namespace compsynth::solver
