#include "synth/experiment.h"

#include <memory>
#include <string>

#include "oracle/ground_truth.h"
#include "oracle/variants.h"
#include "solver/equivalence.h"

namespace compsynth::synth {

namespace {

Synthesizer make_synthesizer(const ExperimentSpec& spec, const SynthesisConfig& config) {
  switch (spec.backend) {
    case Backend::kGrid:
      return make_grid_synthesizer(spec.sketch, config);
    case Backend::kGridBisection:
      return make_bisection_synthesizer(spec.sketch, config);
    case Backend::kZ3:
      break;
  }
  return make_z3_synthesizer(spec.sketch, config);
}

}  // namespace

ExperimentOutcome run_experiment(const ExperimentSpec& spec) {
  ExperimentOutcome outcome;
  std::vector<double> iterations, interactions, totals, averages;

  for (int rep = 0; rep < spec.repetitions; ++rep) {
    SynthesisConfig config = spec.config;
    config.seed = spec.config.seed + static_cast<std::uint64_t>(rep) * 7919;
    config.obs = spec.obs;
    config.obs.run_id = spec.obs.run_id + "/rep" + std::to_string(rep);
    config.obs.seed = config.seed;

    Synthesizer synthesizer = make_synthesizer(spec, config);

    auto truth = std::make_unique<oracle::GroundTruthOracle>(
        spec.sketch, spec.target, config.finder.tie_tolerance);
    std::unique_ptr<oracle::Oracle> user = std::move(truth);
    if (spec.oracle_flip_probability > 0) {
      user = std::make_unique<oracle::NoisyOracle>(
          std::move(user), spec.oracle_flip_probability, config.seed ^ 0xabcdef);
    }

    const SynthesisResult result = synthesizer.run(*user);

    RunOutcome run;
    run.status = result.status;
    run.iterations = result.iterations;
    run.interactions = result.interactions;
    run.total_seconds = result.total_solver_seconds;
    run.avg_iteration_seconds = result.average_iteration_seconds;
    run.oracle_comparisons = result.oracle_comparisons;
    if (result.status == SynthesisStatus::kConverged) ++outcome.converged_runs;
    if (result.objective.has_value() && spec.verify_equivalence) {
      run.correct = solver::ranking_equivalent(spec.sketch, *result.objective,
                                               spec.target, config.finder);
      if (run.correct) ++outcome.correct_runs;
    }

    iterations.push_back(run.iterations);
    interactions.push_back(run.interactions);
    totals.push_back(run.total_seconds);
    averages.push_back(run.avg_iteration_seconds);
    outcome.runs.push_back(run);
  }

  outcome.iterations = util::summarize(iterations);
  outcome.interactions = util::summarize(interactions);
  outcome.total_seconds = util::summarize(totals);
  outcome.avg_iteration_seconds = util::summarize(averages);
  return outcome;
}

}  // namespace compsynth::synth
