// The paper's SMT-backed candidate finder (native Z3 C++ API).
//
// Encodes exactly the §4.2 query:
//
//   exists fa, fb, s1, s2 .
//        Viable(fa) /\ Viable(fb)
//     /\ for every edge (u > v) in G:  fa(u) > fa(v)  /\  fb(u) > fb(v)
//     /\ fa(s1) > fa(s2)  /\  fb(s2) > fb(s1)        (with margin)
//     /\ ClosedInRange(s1) /\ ClosedInRange(s2)
//
// Hole variables are reals constrained to their finite grids (pure QF_NRA),
// so UNSAT exactly means "all viable G-consistent candidates induce the same
// margin-separated ranking" and synthesis can stop.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>

#include "sketch/analyze.h"
#include "solver/finder.h"

namespace z3 {
class solver;  // from z3++.h; kept out of this header deliberately
}

namespace compsynth::solver {

class Z3Finder final : public CandidateFinder {
 public:
  /// Binds the finder to a sketch (copied; sketches are cheap shared-body
  /// values). `viability.concrete` is enforced via model blocking, which is
  /// sound and complete over the finite hole grid.
  explicit Z3Finder(sketch::Sketch sketch, FinderConfig config = {},
                    Viability viability = {}, ScenarioDomain domain = {});

  FinderResult find_distinguishing(const pref::PreferenceGraph& graph,
                                   int num_pairs) override;

  std::optional<sketch::HoleAssignment> find_consistent(
      const pref::PreferenceGraph& graph) override;

  /// Number of solver checks issued so far (for benchmarking/diagnostics).
  long query_count() const { return query_count_; }

  /// Streams every emitted query as SMT-LIB2 text to `log` (nullptr
  /// disables). Useful for debugging encodings and replaying queries with
  /// other solvers. The stream must outlive the finder.
  void set_query_log(std::ostream* log) { query_log_ = log; }

  /// Fault injection (util::FaultPlan): each solver check may be preceded by
  /// an injected slowdown and/or replaced by an injected transient failure,
  /// which is retried per FinderConfig::retry with backoff ("fault"/"retry"
  /// trace events, z3.failures / z3.retries counters). A check that keeps
  /// failing after the attempt budget reports `unknown`, which the
  /// synthesizer surfaces as kSolverGaveUp rather than crashing the session.
  /// The injector's decision stream is part of save_state when attached.
  void set_fault_injector(std::shared_ptr<util::FaultInjector> injector) {
    injector_ = std::move(injector);
  }

  /// Durable-session persistence: the query counter plus the attached fault
  /// injector's decision stream (when any), so a resumed run keeps stable
  /// query indices in traces and replays the identical fault sequence.
  std::string save_state() const override;
  void restore_state(const std::string& state) override;

 private:
  void log_query(z3::solver& solver, const char* kind);

  sketch::Sketch sketch_;
  FinderConfig config_;
  Viability viability_;
  ScenarioDomain domain_;
  /// Interval precheck from the static analyzer (computed once in the
  /// ctor): a proven enclosure of the objective over the full metric box x
  /// hole grid. Asserted as redundant-but-sound bounds on every encoded
  /// objective term, which narrows nlsat's search without changing any
  /// verdict. Absent when the analysis cannot certify a clean finite bound
  /// (possible NaN / EvalError / unbounded output).
  std::optional<sketch::Interval> objective_bounds_;
  long query_count_ = 0;
  std::ostream* query_log_ = nullptr;
  std::shared_ptr<util::FaultInjector> injector_;
};

}  // namespace compsynth::solver
