file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_query.dir/bench_ablation_query.cpp.o"
  "CMakeFiles/bench_ablation_query.dir/bench_ablation_query.cpp.o.d"
  "bench_ablation_query"
  "bench_ablation_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
