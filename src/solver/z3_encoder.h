// Translation of sketch expressions into Z3 real-arithmetic terms.
//
// Mirrors the concrete interpreter in sketch/eval.h node for node; the two
// are differentially tested. All numbers are encoded as exact rationals
// (doubles convert exactly via their binary mantissa/exponent), so the SMT
// side never suffers floating-point rounding.
#pragma once

#include <z3++.h>

#include <span>
#include <vector>

#include "sketch/ast.h"

namespace compsynth::solver {

/// Exact conversion of a finite double into a Z3 real numeral.
/// Every finite double is num / 2^k exactly; huge magnitudes fall back to a
/// high-precision decimal string.
z3::expr real_of_double(z3::context& ctx, double value);

/// Encodes a numeric sketch expression. `metrics[i]` / `holes[i]` supply the
/// Z3 terms standing for metric i / hole i (they may be variables or
/// numerals). The expression must be well-typed.
z3::expr encode_numeric(z3::context& ctx, const sketch::Expr& e,
                        std::span<const z3::expr> metrics,
                        std::span<const z3::expr> holes);

/// Encodes a boolean sketch expression under the same environment.
z3::expr encode_bool(z3::context& ctx, const sketch::Expr& e,
                     std::span<const z3::expr> metrics,
                     std::span<const z3::expr> holes);

/// Creates one fresh real variable per hole, named `<prefix><holename>`.
std::vector<z3::expr> make_hole_vars(z3::context& ctx,
                                     const sketch::Sketch& sketch,
                                     const std::string& prefix);

/// The grid-membership constraint for hole variables: each variable equals
/// one of its HoleSpec's grid values. Keeps the formula in pure QF_NRA.
z3::expr hole_domain_constraint(z3::context& ctx, const sketch::Sketch& sketch,
                                std::span<const z3::expr> hole_vars);

/// Converts concrete metric values into Z3 numerals.
std::vector<z3::expr> encode_scenario(z3::context& ctx,
                                      std::span<const double> metrics);

/// Extracts a double from a numeral in a model (model completion on).
double value_of(const z3::model& model, const z3::expr& var);

}  // namespace compsynth::solver
