#include "te/topology.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace compsynth::te {

NodeId Topology::add_node(std::string name) {
  nodes_.push_back(Node{std::move(name)});
  out_.emplace_back();
  return nodes_.size() - 1;
}

LinkId Topology::add_link(NodeId from, NodeId to, double capacity_gbps,
                          double latency_ms) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw std::invalid_argument("add_link: unknown endpoint");
  }
  if (from == to) throw std::invalid_argument("add_link: self-loop");
  if (capacity_gbps <= 0) throw std::invalid_argument("add_link: capacity must be positive");
  if (latency_ms < 0) throw std::invalid_argument("add_link: negative latency");
  links_.push_back(Link{from, to, capacity_gbps, latency_ms});
  out_[from].push_back(links_.size() - 1);
  return links_.size() - 1;
}

void Topology::add_duplex_link(NodeId a, NodeId b, double capacity_gbps,
                               double latency_ms) {
  add_link(a, b, capacity_gbps, latency_ms);
  add_link(b, a, capacity_gbps, latency_ms);
}

bool Topology::strongly_connected() const {
  if (nodes_.empty()) return true;
  // BFS forward from node 0 and backward (via reversed adjacency).
  auto bfs = [&](bool forward) {
    std::vector<bool> seen(nodes_.size(), false);
    std::vector<NodeId> queue{0};
    seen[0] = true;
    std::size_t count = 1;
    while (!queue.empty()) {
      const NodeId v = queue.back();
      queue.pop_back();
      for (const Link& l : links_) {
        const NodeId src = forward ? l.from : l.to;
        const NodeId dst = forward ? l.to : l.from;
        if (src == v && !seen[dst]) {
          seen[dst] = true;
          ++count;
          queue.push_back(dst);
        }
      }
    }
    return count == nodes_.size();
  };
  return bfs(true) && bfs(false);
}

Topology abilene() {
  Topology t;
  const NodeId sea = t.add_node("Seattle");
  const NodeId sun = t.add_node("Sunnyvale");
  const NodeId lax = t.add_node("LosAngeles");
  const NodeId den = t.add_node("Denver");
  const NodeId kan = t.add_node("KansasCity");
  const NodeId hou = t.add_node("Houston");
  const NodeId chi = t.add_node("Chicago");
  const NodeId ind = t.add_node("Indianapolis");
  const NodeId atl = t.add_node("Atlanta");
  const NodeId was = t.add_node("Washington");
  const NodeId nyc = t.add_node("NewYork");

  // Duplex trunks; latency approximates great-circle propagation delay.
  t.add_duplex_link(sea, sun, 10, 14);
  t.add_duplex_link(sea, den, 10, 21);
  t.add_duplex_link(sun, lax, 10, 6);
  t.add_duplex_link(sun, den, 10, 16);
  t.add_duplex_link(lax, hou, 10, 24);
  t.add_duplex_link(den, kan, 10, 10);
  t.add_duplex_link(kan, hou, 10, 13);
  t.add_duplex_link(kan, ind, 10, 8);
  t.add_duplex_link(hou, atl, 10, 14);
  t.add_duplex_link(chi, ind, 10, 4);
  t.add_duplex_link(chi, nyc, 10, 16);
  t.add_duplex_link(ind, atl, 10, 9);
  t.add_duplex_link(atl, was, 10, 11);
  t.add_duplex_link(was, nyc, 10, 5);
  return t;
}

Topology random_wan(util::Rng& rng, std::size_t nodes, std::size_t extra_links,
                    double min_capacity, double max_capacity) {
  if (nodes < 2) throw std::invalid_argument("random_wan: need at least 2 nodes");
  if (min_capacity <= 0 || max_capacity < min_capacity) {
    throw std::invalid_argument("random_wan: bad capacity range");
  }
  Topology t;
  for (std::size_t i = 0; i < nodes; ++i) t.add_node("n" + std::to_string(i));

  auto random_capacity = [&] { return rng.uniform_real(min_capacity, max_capacity); };
  auto random_latency = [&] { return rng.uniform_real(1.0, 40.0); };

  // Ring backbone guarantees strong connectivity.
  for (std::size_t i = 0; i < nodes; ++i) {
    t.add_duplex_link(i, (i + 1) % nodes, random_capacity(), random_latency());
  }
  // Random chords add path diversity.
  for (std::size_t i = 0; i < extra_links; ++i) {
    const NodeId a = rng.index(nodes);
    NodeId b = rng.index(nodes);
    if (a == b) continue;
    t.add_duplex_link(a, b, random_capacity(), random_latency());
  }
  return t;
}

Topology waxman_wan(util::Rng& rng, std::size_t nodes, double alpha, double beta,
                    double min_capacity, double max_capacity,
                    double diagonal_latency_ms) {
  if (nodes < 2) throw std::invalid_argument("waxman_wan: need at least 2 nodes");
  if (alpha <= 0 || alpha > 1 || beta <= 0) {
    throw std::invalid_argument("waxman_wan: alpha in (0,1], beta > 0 required");
  }
  if (min_capacity <= 0 || max_capacity < min_capacity) {
    throw std::invalid_argument("waxman_wan: bad capacity range");
  }

  Topology t;
  std::vector<std::pair<double, double>> pos;
  pos.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    t.add_node("w" + std::to_string(i));
    pos.emplace_back(rng.uniform_real(0, 1), rng.uniform_real(0, 1));
  }
  const double diagonal = std::sqrt(2.0);
  auto distance = [&](std::size_t i, std::size_t j) {
    const double dx = pos[i].first - pos[j].first;
    const double dy = pos[i].second - pos[j].second;
    return std::sqrt(dx * dx + dy * dy);
  };
  auto latency = [&](std::size_t i, std::size_t j) {
    // Clamp away from zero so co-located nodes still get a positive delay.
    return std::max(0.5, distance(i, j) / diagonal * diagonal_latency_ms);
  };
  auto capacity = [&] { return rng.uniform_real(min_capacity, max_capacity); };

  // Connectivity backbone: a ring in random order.
  std::vector<std::size_t> order(nodes);
  for (std::size_t i = 0; i < nodes; ++i) order[i] = i;
  rng.shuffle(order);
  for (std::size_t i = 0; i < nodes; ++i) {
    const std::size_t a = order[i];
    const std::size_t b = order[(i + 1) % nodes];
    t.add_duplex_link(a, b, capacity(), latency(a, b));
  }

  // Waxman chords.
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t j = i + 1; j < nodes; ++j) {
      const double p = alpha * std::exp(-distance(i, j) / (beta * diagonal));
      if (rng.bernoulli(p)) {
        t.add_duplex_link(i, j, capacity(), latency(i, j));
      }
    }
  }
  return t;
}

std::vector<Demand> gravity_demands(const Topology& topo, util::Rng& rng,
                                    double total_demand_gbps,
                                    std::size_t top_pairs) {
  const std::size_t n = topo.node_count();
  if (n < 2) throw std::invalid_argument("gravity_demands: topology too small");
  if (total_demand_gbps <= 0) {
    throw std::invalid_argument("gravity_demands: non-positive total demand");
  }

  // Lognormal node weights: a few "big" PoPs dominate, as in real matrices.
  std::vector<double> weight(n);
  for (double& w : weight) w = std::exp(rng.gaussian(0.0, 1.0));

  std::vector<Demand> all;
  double mass = 0;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const double m = weight[i] * weight[j];
      all.push_back(Demand{i, j, m});
      mass += m;
    }
  }
  for (Demand& d : all) d.demand_gbps = d.demand_gbps / mass * total_demand_gbps;

  std::sort(all.begin(), all.end(), [](const Demand& a, const Demand& b) {
    return a.demand_gbps > b.demand_gbps;
  });
  if (all.size() > top_pairs) all.resize(top_pairs);
  return all;
}

}  // namespace compsynth::te
