// Solver-free candidate finder over the explicit hole grid.
//
// Maintains the version space — the set of hole assignments consistent with
// the preference graph — explicitly, shrinking it incrementally as edges and
// ties arrive. Distinguishing scenario pairs are found by sampling the
// (continuous) metric box plus a structured sweep near the candidates'
// decision boundaries.
//
// Compared to Z3Finder:
//   + no SMT dependency, trivially debuggable, very fast per query;
//   - its "unique ranking" verdict is approximate (based on a sampling
//     budget rather than a proof), so it may stop early on adversarial
//     sketches. The differential tests quantify this.
// It is the "search loop" baseline the repro notes anticipate, and the
// ablation bench (bench_ablation_solver) compares the two head to head.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "solver/finder.h"
#include "util/rng.h"

namespace compsynth::solver {

/// How the finder picks which distinguishing pair to ask the user about.
enum class QueryStrategy {
  /// First disagreement found between a random candidate pair — mirrors the
  /// paper's Z3 behaviour, where the solver returns an arbitrary witness.
  kFirstFound,
  /// Active learning: examine several disagreement witnesses and ask about
  /// the one whose answer splits the surviving version space most evenly,
  /// maximizing the information per user interaction.
  kBisection,
};

struct GridFinderConfig {
  FinderConfig base;
  /// Random scenario pairs examined per candidate pair when hunting for a
  /// distinguishing input.
  int scenario_samples = 512;
  /// Candidate pairs examined before concluding (approximately) that all
  /// survivors rank identically.
  int candidate_pair_budget = 64;
  QueryStrategy strategy = QueryStrategy::kFirstFound;
  /// Disagreement witnesses scored per iteration under kBisection.
  int bisection_samples = 12;
  std::uint64_t seed = 0x5eed;
};

class GridFinder final : public CandidateFinder {
 public:
  explicit GridFinder(sketch::Sketch sketch, GridFinderConfig config = {},
                      Viability viability = {}, ScenarioDomain domain = {});

  FinderResult find_distinguishing(const pref::PreferenceGraph& graph,
                                   int num_pairs) override;

  std::optional<sketch::HoleAssignment> find_consistent(
      const pref::PreferenceGraph& graph) override;

  /// Survivors consistent with the most recently seen graph state.
  std::size_t version_space_size() const { return survivors_.size(); }

 private:
  void sync(const pref::PreferenceGraph& graph);
  bool consistent(const sketch::HoleAssignment& a,
                  const pref::PreferenceGraph& graph, std::size_t first_edge,
                  std::size_t first_tie) const;
  std::vector<double> boundary_values(const sketch::HoleAssignment& a,
                                      std::size_t metric) const;
  std::optional<DistinguishingPair> distinguish(
      const sketch::HoleAssignment& a, const sketch::HoleAssignment& b);

  sketch::Sketch sketch_;
  GridFinderConfig config_;
  Viability viability_;
  ScenarioDomain domain_;
  util::Rng rng_;

  std::vector<sketch::HoleAssignment> survivors_;
  bool initialized_ = false;
  std::size_t edges_seen_ = 0;
  std::size_t ties_seen_ = 0;
};

}  // namespace compsynth::solver
