file(REMOVE_RECURSE
  "CMakeFiles/test_te.dir/te_test.cpp.o"
  "CMakeFiles/test_te.dir/te_test.cpp.o.d"
  "test_te"
  "test_te.pdb"
  "test_te[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_te.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
