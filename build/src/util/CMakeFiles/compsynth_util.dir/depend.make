# Empty dependencies file for compsynth_util.
# This may be replaced when dependencies are built.
