#include "te/lp/simplex.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace compsynth::te::lp {

namespace {

constexpr double kEps = 1e-9;
constexpr long kMaxPivots = 200000;

// Dense tableau with explicit basis bookkeeping. Columns are laid out as
// [structural | slack/surplus | artificial]; `allowed` masks artificials out
// of phase 2.
class Tableau {
 public:
  explicit Tableau(const LinearProgram& lp) : n_struct_(lp.num_vars) {
    const std::size_t m = lp.constraints.size();

    // Count auxiliary columns. Every row gets its rhs normalized to >= 0
    // first (flipping the relation when multiplying by -1).
    std::vector<Constraint> rows = lp.constraints;
    for (Constraint& c : rows) {
      c.coeffs.resize(n_struct_, 0.0);
      if (c.rhs < 0) {
        for (double& v : c.coeffs) v = -v;
        c.rhs = -c.rhs;
        if (c.rel == Relation::kLe) c.rel = Relation::kGe;
        else if (c.rel == Relation::kGe) c.rel = Relation::kLe;
      }
    }
    std::size_t n_slack = 0, n_art = 0;
    for (const Constraint& c : rows) {
      if (c.rel != Relation::kEq) ++n_slack;
      if (c.rel != Relation::kLe) ++n_art;
    }
    n_total_ = n_struct_ + n_slack + n_art;
    art_begin_ = n_struct_ + n_slack;

    a_.assign(m, std::vector<double>(n_total_ + 1, 0.0));
    basis_.assign(m, 0);
    allowed_.assign(n_total_, true);

    std::size_t slack = n_struct_;
    std::size_t art = art_begin_;
    for (std::size_t i = 0; i < m; ++i) {
      const Constraint& c = rows[i];
      for (std::size_t j = 0; j < n_struct_; ++j) a_[i][j] = c.coeffs[j];
      a_[i][n_total_] = c.rhs;
      switch (c.rel) {
        case Relation::kLe:
          a_[i][slack] = 1.0;
          basis_[i] = slack++;
          break;
        case Relation::kGe:
          a_[i][slack] = -1.0;  // surplus
          ++slack;
          a_[i][art] = 1.0;
          basis_[i] = art++;
          break;
        case Relation::kEq:
          a_[i][art] = 1.0;
          basis_[i] = art++;
          break;
      }
    }
  }

  std::size_t rows() const { return a_.size(); }
  std::size_t art_begin() const { return art_begin_; }
  std::size_t total_cols() const { return n_total_; }

  /// Runs simplex with the given column costs (maximization). Returns
  /// kOptimal/kUnbounded/kIterationLimit; the basis/tableau reflect the
  /// final state.
  SolveStatus optimize(const std::vector<double>& cost) {
    for (long pivots = 0; pivots < kMaxPivots; ++pivots) {
      // Reduced costs d_j = c_j - c_B . B^-1 A_j. Bland: entering column is
      // the smallest allowed index with d_j > eps.
      std::size_t enter = n_total_;
      for (std::size_t j = 0; j < n_total_; ++j) {
        if (!allowed_[j] || is_basic(j)) continue;
        double d = cost[j];
        for (std::size_t i = 0; i < rows(); ++i) {
          d -= cost[basis_[i]] * a_[i][j];
        }
        if (d > kEps) {
          enter = j;
          break;
        }
      }
      if (enter == n_total_) return SolveStatus::kOptimal;

      // Ratio test; Bland tie-break on smallest basis variable index.
      std::size_t leave = rows();
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < rows(); ++i) {
        if (a_[i][enter] <= kEps) continue;
        const double ratio = a_[i][n_total_] / a_[i][enter];
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leave == rows() || basis_[i] < basis_[leave]))) {
          best_ratio = ratio;
          leave = i;
        }
      }
      if (leave == rows()) return SolveStatus::kUnbounded;
      pivot(leave, enter);
    }
    return SolveStatus::kIterationLimit;
  }

  /// Pivots any basic artificial out of the basis (or drops its row as
  /// redundant) so that phase 2 can mask artificial columns entirely.
  void eliminate_artificials() {
    for (std::size_t i = 0; i < rows(); ++i) {
      if (basis_[i] < art_begin_) continue;
      // Find a non-artificial column with a nonzero pivot in this row.
      std::size_t enter = n_total_;
      for (std::size_t j = 0; j < art_begin_; ++j) {
        if (std::abs(a_[i][j]) > kEps) {
          enter = j;
          break;
        }
      }
      if (enter != n_total_) {
        pivot(i, enter);
      } else {
        // Row is all-zero over real columns: redundant constraint. Zero it;
        // the artificial stays basic at value 0 and never re-enters play.
      }
    }
    for (std::size_t j = art_begin_; j < n_total_; ++j) allowed_[j] = false;
  }

  double basic_value_sum(std::size_t from_col) const {
    double s = 0;
    for (std::size_t i = 0; i < rows(); ++i) {
      if (basis_[i] >= from_col) s += a_[i][n_total_];
    }
    return s;
  }

  std::vector<double> extract(std::size_t n) const {
    std::vector<double> x(n, 0.0);
    for (std::size_t i = 0; i < rows(); ++i) {
      if (basis_[i] < n) x[basis_[i]] = a_[i][n_total_];
    }
    return x;
  }

 private:
  bool is_basic(std::size_t col) const {
    for (const std::size_t b : basis_) {
      if (b == col) return true;
    }
    return false;
  }

  void pivot(std::size_t row, std::size_t col) {
    const double p = a_[row][col];
    for (double& v : a_[row]) v /= p;
    for (std::size_t i = 0; i < rows(); ++i) {
      if (i == row) continue;
      const double factor = a_[i][col];
      if (factor == 0) continue;
      for (std::size_t j = 0; j <= n_total_; ++j) {
        a_[i][j] -= factor * a_[row][j];
      }
    }
    basis_[row] = col;
  }

  std::size_t n_struct_;
  std::size_t n_total_ = 0;
  std::size_t art_begin_ = 0;
  std::vector<std::vector<double>> a_;  // m x (n_total + 1), last col = rhs
  std::vector<std::size_t> basis_;
  std::vector<bool> allowed_;
};

}  // namespace

void LinearProgram::add(Relation rel, std::vector<double> coeffs, double rhs) {
  if (coeffs.size() > num_vars) {
    throw std::invalid_argument("LinearProgram::add: too many coefficients");
  }
  coeffs.resize(num_vars, 0.0);
  constraints.push_back(Constraint{std::move(coeffs), rel, rhs});
}

Solution solve(const LinearProgram& lp) {
  for (double c : lp.objective) {
    if (!std::isfinite(c)) throw std::invalid_argument("solve: non-finite objective");
  }
  for (const Constraint& c : lp.constraints) {
    if (!std::isfinite(c.rhs)) throw std::invalid_argument("solve: non-finite rhs");
    for (double v : c.coeffs) {
      if (!std::isfinite(v)) throw std::invalid_argument("solve: non-finite coefficient");
    }
  }

  Tableau t(lp);
  Solution out;

  // Phase 1: maximize -(sum of artificials); feasible iff optimum is ~0.
  if (t.art_begin() < t.total_cols()) {
    std::vector<double> phase1_cost(t.total_cols(), 0.0);
    for (std::size_t j = t.art_begin(); j < t.total_cols(); ++j) phase1_cost[j] = -1.0;
    const SolveStatus s1 = t.optimize(phase1_cost);
    if (s1 == SolveStatus::kIterationLimit) {
      out.status = s1;
      return out;
    }
    // (Phase 1 cannot be unbounded: the objective is bounded above by 0.)
    if (t.basic_value_sum(t.art_begin()) > 1e-6) {
      out.status = SolveStatus::kInfeasible;
      return out;
    }
    t.eliminate_artificials();
  }

  // Phase 2: the real objective over structural + slack columns.
  std::vector<double> cost(t.total_cols(), 0.0);
  for (std::size_t j = 0; j < lp.num_vars; ++j) cost[j] = lp.objective[j];
  const SolveStatus s2 = t.optimize(cost);
  if (s2 != SolveStatus::kOptimal) {
    out.status = s2;
    return out;
  }

  out.status = SolveStatus::kOptimal;
  out.x = t.extract(lp.num_vars);
  out.objective = 0;
  for (std::size_t j = 0; j < lp.num_vars; ++j) {
    out.objective += lp.objective[j] * out.x[j];
  }
  return out;
}

}  // namespace compsynth::te::lp
