// Annotated synchronization primitives: Mutex, MutexLock, CondVar.
//
// Clang's thread-safety analysis (-Wthread-safety, see
// util/thread_annotations.h) only tracks lock state through functions that
// carry ACQUIRE/RELEASE attributes. libstdc++'s std::mutex and
// std::lock_guard carry none, so GUARDED_BY fields protected by raw
// std::mutex are unanalyzable: every access would warn with no way to
// discharge it. These thin wrappers restore the attributes without changing
// the runtime behaviour —
//
//   util::Mutex      std::mutex with ACQUIRE/RELEASE-annotated lock/unlock.
//   util::MutexLock  std::lock_guard equivalent (SCOPED_CAPABILITY), plus an
//                    explicit release() for the handful of flows that must
//                    drop the lock before scope end (e.g. scheduling work
//                    that re-takes it).
//   util::CondVar    std::condition_variable_any over a util::Mutex; wait
//                    overloads are REQUIRES(mu) so waiting without the lock
//                    is a compile error.
//
// CondVar costs one indirection over std::condition_variable (the _any
// variant wraps the lockable); every wait in this codebase sits on a
// blocking slow path where that is noise. Mutex satisfies Lockable, so
// std::scoped_lock/std::unique_lock still work in generic code — but those
// guards are invisible to the analysis, so first-party code uses MutexLock.
//
// The locking model each subsystem builds from these primitives (which
// mutex guards what, lock ordering) is documented in docs/CONCURRENCY.md.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace compsynth::util {

/// std::mutex with thread-safety-analysis attributes. Non-recursive.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock with an early-release escape (std::lock_guard +
/// std::unique_lock::unlock, annotated). Not movable; one mutex for life.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Drops the lock before scope end (idempotence is a bug, not a feature:
  /// the analysis rejects a second release on any path).
  void release() RELEASE() {
    mu_.unlock();
    held_ = false;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable bound to util::Mutex. All waits take the Mutex the
/// caller already holds (enforced at compile time under Clang); predicates
/// run with the lock held, exactly like the std counterparts.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    return cv_.wait_for(mu, timeout);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  // _any because util::Mutex is not std::mutex; it unlocks/relocks through
  // the annotated lock()/unlock(), which is invisible to the analysis (the
  // wait as a whole holds the lock on entry and exit, which is the contract
  // REQUIRES expresses).
  std::condition_variable_any cv_;
};

}  // namespace compsynth::util
