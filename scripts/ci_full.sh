#!/usr/bin/env bash
# Full local CI sweep, in dependency order:
#   1. configure + build the main tree
#   2. the complete ctest suite (unit, integration, differential, lint
#      gates, docs_check, docs_blocks, session kill/resume end to end)
#   3. the synthesis-service end-to-end smokes, re-run explicitly so a
#      daemon/protocol regression is named in the CI log even when the
#      suite above was filtered (serve_smoke drives every protocol verb
#      and error code through a live daemon; serve_kill_resume kill -9s
#      the daemon mid-run and diffs against an uninterrupted reference)
#   4. the standalone docs checkers (links + code blocks + README index
#      completeness, which gates docs/SERVICE.md and friends)
#   5. the address+undefined sanitizer build/test sweep
#
# Run it before sending a change; scripts/check_tsan.sh adds the (slower)
# ThreadSanitizer pass that exercises the parallel version-space engine.
#
# Usage:
#   scripts/ci_full.sh                 # everything
#   COMPSYNTH_SKIP_SANITIZERS=1 scripts/ci_full.sh   # fast pass, no asan/ubsan
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"

echo "== configure + build ($build) =="
cmake -B "$build" -S "$repo" >/dev/null
cmake --build "$build" -j "$(nproc)"

echo "== test suite =="
ctest --test-dir "$build" -j "$(nproc)" --output-on-failure

echo "== synthesis service end to end =="
ctest --test-dir "$build" -R '^serve_(smoke|kill_resume)$' --output-on-failure

echo "== docs: links =="
"$repo/scripts/check_docs_links.sh" "$repo"

echo "== docs: code blocks =="
"$repo/scripts/check_docs_blocks.sh" "$repo" "$build/tools/compsynth_lint"

if [ "${COMPSYNTH_SKIP_SANITIZERS:-0}" != "1" ]; then
  echo "== asan + ubsan sweep =="
  "$repo/scripts/check_asan_ubsan.sh"
else
  echo "== asan + ubsan sweep skipped (COMPSYNTH_SKIP_SANITIZERS=1) =="
fi

echo "ci_full: all green"
