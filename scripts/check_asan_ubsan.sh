#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UndefinedBehaviorSanitizer
# (-DCOMPSYNTH_SANITIZE=address,undefined) in a dedicated build directory and
# runs the test suite under it.
#
# Usage:
#   scripts/check_asan_ubsan.sh [ctest-regex]
#
# With no argument the full suite runs; pass a regex (as for `ctest -R`) to
# restrict to a subset, e.g.:
#   scripts/check_asan_ubsan.sh 'analyze|prune_differential'
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-asan-ubsan"
regex="${1:-}"

cmake -B "$build" -S "$repo" \
  -DCOMPSYNTH_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$build" -j "$(nproc)"

export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

cd "$build"
if [[ -n "$regex" ]]; then
  ctest --output-on-failure -R "$regex"
else
  ctest --output-on-failure
fi
echo "asan+ubsan: clean"
