#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace compsynth::obs {

namespace {

// fetch_add for atomic<double> via CAS (std::atomic<double>::fetch_add is
// C++20 but not universally implemented lock-free; this is portable).
void atomic_add(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value < cur && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value > cur && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::bin_of(double value) {
  if (!(value >= kLowest)) return 0;  // underflow; also catches NaN
  if (value >= kHighest) return kBins - 1;
  const int bin =
      1 + static_cast<int>((std::log10(value / kLowest)) * kBinsPerDecade);
  return std::clamp(bin, 1, kBins - 2);
}

double Histogram::bin_midpoint(int bin) {
  if (bin <= 0) return kLowest;
  if (bin >= kBins - 1) return kHighest;
  const double lo_exp = static_cast<double>(bin - 1) / kBinsPerDecade;
  // Geometric midpoint of [10^lo, 10^(lo + 1/16)) relative to kLowest.
  return kLowest * std::pow(10.0, lo_exp + 0.5 / kBinsPerDecade);
}

double Histogram::relative_error() {
  return std::pow(10.0, 0.5 / kBinsPerDecade);
}

void Histogram::record(double value) {
  bins_[static_cast<std::size_t>(bin_of(value))].fetch_add(
      1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  // min_/max_ are seeded to +/-infinity, so the plain CAS loops are the
  // whole story: any sample beats the seed, racing first recorders each
  // fold their own value in, and no interleaving can lose one. (The
  // previous count_==0 guarded seed-CAS could: a legitimately recorded 0.0
  // was indistinguishable from the unrecorded-sentinel 0, so a racing
  // writer's seed-CAS clobbered it — tests/concurrency_stress_test.cpp
  // MetricsStress.FirstRecordRace* pins the fix.) count_ is bumped last
  // with release order so a reader that observes count_ > 0 with acquire
  // also observes this sample's min/max updates.
  atomic_min(min_, value);
  atomic_max(max_, value);
  count_.fetch_add(1, std::memory_order_release);
}

double Histogram::mean() const {
  const long n = count();
  return n == 0 ? 0 : sum() / static_cast<double>(n);
}

double Histogram::min() const {
  if (count_.load(std::memory_order_acquire) == 0) return 0;
  const double m = min_.load(std::memory_order_relaxed);
  return std::isinf(m) ? 0 : m;  // only NaN samples recorded so far
}

double Histogram::max() const {
  if (count_.load(std::memory_order_acquire) == 0) return 0;
  const double m = max_.load(std::memory_order_relaxed);
  return std::isinf(m) ? 0 : m;
}

double Histogram::quantile(double q) const {
  const long n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample, nearest-rank convention.
  const long rank = std::max<long>(
      1, static_cast<long>(std::ceil(q * static_cast<double>(n))));
  long seen = 0;
  for (int b = 0; b < kBins; ++b) {
    seen += bins_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    if (seen >= rank) {
      return std::clamp(bin_midpoint(b), min(), max());
    }
  }
  return max();  // unreachable unless a racing record() is mid-flight
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const util::MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const util::MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const util::MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, long>> MetricsRegistry::counters() const {
  const util::MutexLock lock(mutex_);
  std::vector<std::pair<std::string, long>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  const util::MutexLock lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::histograms() const {
  const util::MutexLock lock(mutex_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

std::string MetricsRegistry::render_markdown() const {
  std::ostringstream os;
  os.precision(6);
  const auto cs = counters();
  const auto gs = gauges();
  const auto hs = histograms();
  if (!cs.empty()) {
    os << "### Counters\n\n| counter | value |\n|---|---|\n";
    for (const auto& [name, v] : cs) os << "| `" << name << "` | " << v << " |\n";
    os << "\n";
  }
  if (!gs.empty()) {
    os << "### Gauges\n\n| gauge | value |\n|---|---|\n";
    for (const auto& [name, v] : gs) os << "| `" << name << "` | " << v << " |\n";
    os << "\n";
  }
  if (!hs.empty()) {
    os << "### Latency histograms (seconds)\n\n"
          "| histogram | count | mean | p50 | p90 | p99 | max |\n"
          "|---|---|---|---|---|---|---|\n";
    for (const auto& [name, h] : hs) {
      os << "| `" << name << "` | " << h->count() << " | " << h->mean()
         << " | " << h->quantile(0.5) << " | " << h->quantile(0.9) << " | "
         << h->quantile(0.99) << " | " << h->max() << " |\n";
    }
    os << "\n";
  }
  if (cs.empty() && gs.empty() && hs.empty()) os << "(no metrics recorded)\n";
  return os.str();
}

}  // namespace compsynth::obs
