
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/ast.cpp" "src/sketch/CMakeFiles/compsynth_sketch.dir/ast.cpp.o" "gcc" "src/sketch/CMakeFiles/compsynth_sketch.dir/ast.cpp.o.d"
  "/root/repo/src/sketch/eval.cpp" "src/sketch/CMakeFiles/compsynth_sketch.dir/eval.cpp.o" "gcc" "src/sketch/CMakeFiles/compsynth_sketch.dir/eval.cpp.o.d"
  "/root/repo/src/sketch/lexer.cpp" "src/sketch/CMakeFiles/compsynth_sketch.dir/lexer.cpp.o" "gcc" "src/sketch/CMakeFiles/compsynth_sketch.dir/lexer.cpp.o.d"
  "/root/repo/src/sketch/library.cpp" "src/sketch/CMakeFiles/compsynth_sketch.dir/library.cpp.o" "gcc" "src/sketch/CMakeFiles/compsynth_sketch.dir/library.cpp.o.d"
  "/root/repo/src/sketch/parser.cpp" "src/sketch/CMakeFiles/compsynth_sketch.dir/parser.cpp.o" "gcc" "src/sketch/CMakeFiles/compsynth_sketch.dir/parser.cpp.o.d"
  "/root/repo/src/sketch/printer.cpp" "src/sketch/CMakeFiles/compsynth_sketch.dir/printer.cpp.o" "gcc" "src/sketch/CMakeFiles/compsynth_sketch.dir/printer.cpp.o.d"
  "/root/repo/src/sketch/typecheck.cpp" "src/sketch/CMakeFiles/compsynth_sketch.dir/typecheck.cpp.o" "gcc" "src/sketch/CMakeFiles/compsynth_sketch.dir/typecheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/compsynth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
