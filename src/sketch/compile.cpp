#include "sketch/compile.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "sketch/batch_kernel.h"

namespace compsynth::sketch {

namespace {

constexpr const char* kNumericPositionError =
    "eval_numeric: boolean node in numeric position";
constexpr const char* kBoolPositionError =
    "eval_bool: numeric node in boolean position";

// Value stacks this deep live on the C++ stack; deeper tapes (pathological
// fuzzer trees) fall back to one heap allocation per eval call.
constexpr std::size_t kInlineStack = 64;

// --- Constant folding --------------------------------------------------------
//
// Replaces a subtree with the exact double the interpreter would produce for
// it. Only total subtrees fold: any metric, hole, ill-typed node or
// constant division by zero in a subtree blocks folding of every ancestor,
// so folding never turns a throwing evaluation into a value (or vice versa).

bool is_const(const ExprPtr& e) { return e->kind == Expr::Kind::kConst; }
bool is_bool_const(const ExprPtr& e) { return e->kind == Expr::Kind::kBoolConst; }

ExprPtr fold(const ExprPtr& e) {
  if (e->children.empty()) return e;
  std::vector<ExprPtr> kids;
  kids.reserve(e->children.size());
  bool changed = false;
  for (const ExprPtr& c : e->children) {
    kids.push_back(fold(c));
    changed |= kids.back() != c;
  }

  switch (e->kind) {
    case Expr::Kind::kNeg:
      if (is_const(kids[0])) return constant(-kids[0]->literal);
      break;
    case Expr::Kind::kBinary:
      if (is_const(kids[0]) && is_const(kids[1])) {
        const double a = kids[0]->literal;
        const double b = kids[1]->literal;
        switch (e->bin_op) {
          case BinOp::kAdd: return constant(a + b);
          case BinOp::kSub: return constant(a - b);
          case BinOp::kMul: return constant(a * b);
          case BinOp::kDiv:
            if (b != 0) return constant(a / b);
            break;  // constant division by zero: keep the runtime throw
          case BinOp::kMin: return constant(std::min(a, b));
          case BinOp::kMax: return constant(std::max(a, b));
        }
      }
      break;
    case Expr::Kind::kIte:
      // A constant condition selects its branch at compile time; the tree
      // interpreter would likewise never look at the other branch.
      if (is_bool_const(kids[0])) {
        return kids[0]->literal != 0 ? kids[1] : kids[2];
      }
      break;
    case Expr::Kind::kCmp:
      if (is_const(kids[0]) && is_const(kids[1])) {
        const double a = kids[0]->literal;
        const double b = kids[1]->literal;
        switch (e->cmp_op) {
          case CmpOp::kLt: return bool_constant(a < b);
          case CmpOp::kLe: return bool_constant(a <= b);
          case CmpOp::kGt: return bool_constant(a > b);
          case CmpOp::kGe: return bool_constant(a >= b);
          case CmpOp::kEq: return bool_constant(a == b);
          case CmpOp::kNe: return bool_constant(a != b);
        }
      }
      break;
    case Expr::Kind::kBoolBinary:
      // Both operands are evaluated regardless, so folding needs both const.
      if (is_bool_const(kids[0]) && is_bool_const(kids[1])) {
        const bool a = kids[0]->literal != 0;
        const bool b = kids[1]->literal != 0;
        return bool_constant(e->bool_op == BoolOp::kAnd ? (a && b) : (a || b));
      }
      break;
    case Expr::Kind::kNot:
      if (is_bool_const(kids[0])) return bool_constant(kids[0]->literal == 0);
      break;
    case Expr::Kind::kChoice:   // selector is a hole; never foldable
    case Expr::Kind::kConst:
    case Expr::Kind::kMetric:
    case Expr::Kind::kHole:
    case Expr::Kind::kBoolConst:
      break;
  }

  if (!changed) return e;
  Expr copy = *e;
  copy.children = std::move(kids);
  return std::make_shared<const Expr>(std::move(copy));
}

// --- Stack-depth accounting --------------------------------------------------
//
// Exact maximum stack occupancy of the emitted code. Left operands stay on
// the stack while right operands evaluate, hence the `1 + need(rhs)` terms.
// kRaise nodes reserve one slot so the bound stays valid on every path.

std::size_t need_numeric(const Expr& e);
std::size_t need_bool(const Expr& e);

std::size_t need_numeric(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kConst:
    case Expr::Kind::kMetric:
    case Expr::Kind::kHole:
      return 1;
    case Expr::Kind::kNeg:
      return need_numeric(*e.children[0]);
    case Expr::Kind::kBinary:
      return std::max(need_numeric(*e.children[0]),
                      1 + need_numeric(*e.children[1]));
    case Expr::Kind::kIte:
      return std::max({need_bool(*e.children[0]), need_numeric(*e.children[1]),
                       need_numeric(*e.children[2])});
    case Expr::Kind::kChoice: {
      std::size_t deepest = 1;
      for (const ExprPtr& alt : e.children) {
        deepest = std::max(deepest, need_numeric(*alt));
      }
      return deepest;
    }
    case Expr::Kind::kCmp:
    case Expr::Kind::kBoolBinary:
    case Expr::Kind::kNot:
    case Expr::Kind::kBoolConst:
      return 1;  // compiles to kRaise
  }
  return 1;
}

std::size_t need_bool(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kBoolConst:
      return 1;
    case Expr::Kind::kCmp:
      return std::max(need_numeric(*e.children[0]),
                      1 + need_numeric(*e.children[1]));
    case Expr::Kind::kBoolBinary:
      return std::max(need_bool(*e.children[0]), 1 + need_bool(*e.children[1]));
    case Expr::Kind::kNot:
      return need_bool(*e.children[0]);
    case Expr::Kind::kConst:
    case Expr::Kind::kMetric:
    case Expr::Kind::kHole:
    case Expr::Kind::kNeg:
    case Expr::Kind::kBinary:
    case Expr::Kind::kIte:
    case Expr::Kind::kChoice:
      return 1;  // compiles to kRaise
  }
  return 1;
}

// --- Lowering ----------------------------------------------------------------

class Emitter {
 public:
  void numeric(const Expr& e) {
    using Op = Instr::Op;
    switch (e.kind) {
      case Expr::Kind::kConst: {
        Instr in{Op::kPushConst};
        in.value = e.literal;
        tape.push_back(in);
        return;
      }
      case Expr::Kind::kMetric:
        push_indexed(Op::kPushMetric, e.metric);
        return;
      case Expr::Kind::kHole:
        push_indexed(Op::kPushHole, e.hole);
        return;
      case Expr::Kind::kNeg:
        numeric(*e.children[0]);
        tape.push_back(Instr{Op::kNeg});
        return;
      case Expr::Kind::kBinary: {
        numeric(*e.children[0]);
        numeric(*e.children[1]);
        Op op = Op::kAdd;
        switch (e.bin_op) {
          case BinOp::kAdd: op = Op::kAdd; break;
          case BinOp::kSub: op = Op::kSub; break;
          case BinOp::kMul: op = Op::kMul; break;
          case BinOp::kDiv: op = Op::kDiv; break;
          case BinOp::kMin: op = Op::kMin; break;
          case BinOp::kMax: op = Op::kMax; break;
        }
        tape.push_back(Instr{op});
        return;
      }
      case Expr::Kind::kIte: {
        boolean(*e.children[0]);
        const std::size_t to_else = placeholder(Op::kJumpIfZero);
        numeric(*e.children[1]);
        const std::size_t to_end = placeholder(Op::kJump);
        patch(to_else);
        numeric(*e.children[2]);
        patch(to_end);
        return;
      }
      case Expr::Kind::kChoice: {
        // One dispatch instruction jumping through a table; every
        // alternative but the last jumps over the remaining ones.
        const std::size_t n = e.children.size();
        const std::size_t base = tables.size();
        tables.push_back(static_cast<std::int32_t>(n));
        tables.resize(tables.size() + n);
        Instr in{Op::kChoice};
        in.a = static_cast<std::int32_t>(e.hole);
        in.b = static_cast<std::int32_t>(base);
        const std::size_t dispatch = tape.size();
        tape.push_back(in);
        std::vector<std::size_t> exits;
        for (std::size_t i = 0; i < n; ++i) {
          tables[base + 1 + i] =
              static_cast<std::int32_t>(tape.size() - dispatch - 1);
          numeric(*e.children[i]);
          if (i + 1 < n) exits.push_back(placeholder(Op::kJump));
        }
        for (const std::size_t at : exits) patch(at);
        return;
      }
      case Expr::Kind::kCmp:
      case Expr::Kind::kBoolBinary:
      case Expr::Kind::kNot:
      case Expr::Kind::kBoolConst:
        raise(/*numeric_position=*/true);
        return;
    }
  }

  void boolean(const Expr& e) {
    using Op = Instr::Op;
    switch (e.kind) {
      case Expr::Kind::kBoolConst: {
        Instr in{Op::kPushConst};
        in.value = e.literal != 0 ? 1.0 : 0.0;
        tape.push_back(in);
        return;
      }
      case Expr::Kind::kCmp: {
        numeric(*e.children[0]);
        numeric(*e.children[1]);
        Op op = Op::kLt;
        switch (e.cmp_op) {
          case CmpOp::kLt: op = Op::kLt; break;
          case CmpOp::kLe: op = Op::kLe; break;
          case CmpOp::kGt: op = Op::kGt; break;
          case CmpOp::kGe: op = Op::kGe; break;
          case CmpOp::kEq: op = Op::kEq; break;
          case CmpOp::kNe: op = Op::kNe; break;
        }
        tape.push_back(Instr{op});
        return;
      }
      case Expr::Kind::kBoolBinary:
        boolean(*e.children[0]);
        boolean(*e.children[1]);
        tape.push_back(
            Instr{e.bool_op == BoolOp::kAnd ? Op::kAnd : Op::kOr});
        return;
      case Expr::Kind::kNot:
        boolean(*e.children[0]);
        tape.push_back(Instr{Op::kNot});
        return;
      case Expr::Kind::kConst:
      case Expr::Kind::kMetric:
      case Expr::Kind::kHole:
      case Expr::Kind::kNeg:
      case Expr::Kind::kBinary:
      case Expr::Kind::kIte:
      case Expr::Kind::kChoice:
        raise(/*numeric_position=*/false);
        return;
    }
  }

  std::vector<Instr> tape;
  std::vector<std::int32_t> tables;

 private:
  void push_indexed(Instr::Op op, std::size_t id) {
    Instr in{op};
    in.a = static_cast<std::int32_t>(id);
    tape.push_back(in);
  }

  std::size_t placeholder(Instr::Op op) {
    tape.push_back(Instr{op});
    return tape.size() - 1;
  }

  // Jump offsets are relative to the instruction after the jump.
  void patch(std::size_t at) {
    tape[at].a = static_cast<std::int32_t>(tape.size() - at - 1);
  }

  void raise(bool numeric_position) {
    Instr in{Instr::Op::kRaise};
    in.a = numeric_position ? 0 : 1;
    tape.push_back(in);
  }
};

// --- Batch lowering ----------------------------------------------------------
//
// Emits the structured (jump-free) tape batch_kernel.h executes under
// per-lane masks. The traversal mirrors Emitter exactly — same type
// contexts, same ill-typed-node kRaise placement — so per lane the two
// tapes perform the identical operation sequence on the identical path.

std::size_t batch_need_numeric(const Expr& e);
std::size_t batch_need_bool(const Expr& e);

std::size_t batch_need_numeric(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kConst:
    case Expr::Kind::kMetric:
    case Expr::Kind::kHole:
      return 1;
    case Expr::Kind::kNeg:
      return batch_need_numeric(*e.children[0]);
    case Expr::Kind::kBinary:
      return std::max(batch_need_numeric(*e.children[0]),
                      1 + batch_need_numeric(*e.children[1]));
    case Expr::Kind::kIte:
      // Unlike the jump tape, the then-value stays parked on the stack
      // while the else branch evaluates, hence the extra slot.
      return std::max({batch_need_bool(*e.children[0]),
                       batch_need_numeric(*e.children[1]),
                       1 + batch_need_numeric(*e.children[2])});
    case Expr::Kind::kChoice: {
      // Arm 0's value becomes the accumulator; later arms evaluate on top
      // of it and blend in via kChoiceAccum.
      std::size_t deepest = std::max<std::size_t>(
          1, batch_need_numeric(*e.children[0]));
      for (std::size_t i = 1; i < e.children.size(); ++i) {
        deepest = std::max(deepest, 1 + batch_need_numeric(*e.children[i]));
      }
      return deepest;
    }
    case Expr::Kind::kCmp:
    case Expr::Kind::kBoolBinary:
    case Expr::Kind::kNot:
    case Expr::Kind::kBoolConst:
      return 1;  // compiles to kRaise (one placeholder slot)
  }
  return 1;
}

std::size_t batch_need_bool(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kBoolConst:
      return 1;
    case Expr::Kind::kCmp:
      return std::max(batch_need_numeric(*e.children[0]),
                      1 + batch_need_numeric(*e.children[1]));
    case Expr::Kind::kBoolBinary:
      return std::max(batch_need_bool(*e.children[0]),
                      1 + batch_need_bool(*e.children[1]));
    case Expr::Kind::kNot:
      return batch_need_bool(*e.children[0]);
    case Expr::Kind::kConst:
    case Expr::Kind::kMetric:
    case Expr::Kind::kHole:
    case Expr::Kind::kNeg:
    case Expr::Kind::kBinary:
    case Expr::Kind::kIte:
    case Expr::Kind::kChoice:
      return 1;  // compiles to kRaise
  }
  return 1;
}

// Upper bound on mask-frame nesting. Type-blind (an ill-typed subtree that
// lowers to kRaise contributes frames it will never use), which only
// over-allocates — the interpreter preallocates this many frames.
std::size_t batch_frames_bound(const Expr& e) {
  std::size_t deepest = 0;
  for (const ExprPtr& c : e.children) {
    deepest = std::max(deepest, batch_frames_bound(*c));
  }
  if (e.kind == Expr::Kind::kIte || e.kind == Expr::Kind::kChoice) {
    return 1 + deepest;
  }
  return deepest;
}

class BatchEmitter {
 public:
  void numeric(const Expr& e) {
    using Op = internal::BatchInstr::Op;
    switch (e.kind) {
      case Expr::Kind::kConst: {
        internal::BatchInstr in{Op::kPushConst};
        in.value = e.literal;
        code.push_back(in);
        return;
      }
      case Expr::Kind::kMetric:
        push_indexed(Op::kPushMetric, e.metric);
        return;
      case Expr::Kind::kHole:
        push_indexed(Op::kPushHole, e.hole);
        return;
      case Expr::Kind::kNeg:
        numeric(*e.children[0]);
        code.push_back(internal::BatchInstr{Op::kNeg});
        return;
      case Expr::Kind::kBinary: {
        numeric(*e.children[0]);
        numeric(*e.children[1]);
        Op op = Op::kAdd;
        switch (e.bin_op) {
          case BinOp::kAdd: op = Op::kAdd; break;
          case BinOp::kSub: op = Op::kSub; break;
          case BinOp::kMul: op = Op::kMul; break;
          case BinOp::kDiv: op = Op::kDiv; break;
          case BinOp::kMin: op = Op::kMin; break;
          case BinOp::kMax: op = Op::kMax; break;
        }
        code.push_back(internal::BatchInstr{op});
        return;
      }
      case Expr::Kind::kIte:
        boolean(*e.children[0]);
        code.push_back(internal::BatchInstr{Op::kIteBegin});
        numeric(*e.children[1]);
        code.push_back(internal::BatchInstr{Op::kIteElse});
        numeric(*e.children[2]);
        code.push_back(internal::BatchInstr{Op::kIteEnd});
        return;
      case Expr::Kind::kChoice: {
        internal::BatchInstr begin{Op::kChoiceBegin};
        begin.a = static_cast<std::int32_t>(e.hole);
        begin.b = static_cast<std::int32_t>(e.children.size());
        code.push_back(begin);
        for (std::size_t i = 0; i < e.children.size(); ++i) {
          internal::BatchInstr arm{Op::kChoiceArm};
          arm.a = static_cast<std::int32_t>(i);
          code.push_back(arm);
          numeric(*e.children[i]);
          if (i > 0) code.push_back(internal::BatchInstr{Op::kChoiceAccum});
        }
        code.push_back(internal::BatchInstr{Op::kChoiceEnd});
        return;
      }
      case Expr::Kind::kCmp:
      case Expr::Kind::kBoolBinary:
      case Expr::Kind::kNot:
      case Expr::Kind::kBoolConst:
        raise(/*numeric_position=*/true);
        return;
    }
  }

  void boolean(const Expr& e) {
    using Op = internal::BatchInstr::Op;
    switch (e.kind) {
      case Expr::Kind::kBoolConst: {
        internal::BatchInstr in{Op::kPushConst};
        in.value = e.literal != 0 ? 1.0 : 0.0;
        code.push_back(in);
        return;
      }
      case Expr::Kind::kCmp: {
        numeric(*e.children[0]);
        numeric(*e.children[1]);
        Op op = Op::kLt;
        switch (e.cmp_op) {
          case CmpOp::kLt: op = Op::kLt; break;
          case CmpOp::kLe: op = Op::kLe; break;
          case CmpOp::kGt: op = Op::kGt; break;
          case CmpOp::kGe: op = Op::kGe; break;
          case CmpOp::kEq: op = Op::kEq; break;
          case CmpOp::kNe: op = Op::kNe; break;
        }
        code.push_back(internal::BatchInstr{op});
        return;
      }
      case Expr::Kind::kBoolBinary:
        boolean(*e.children[0]);
        boolean(*e.children[1]);
        code.push_back(internal::BatchInstr{
            e.bool_op == BoolOp::kAnd ? Op::kAnd : Op::kOr});
        return;
      case Expr::Kind::kNot:
        boolean(*e.children[0]);
        code.push_back(internal::BatchInstr{Op::kNot});
        return;
      case Expr::Kind::kConst:
      case Expr::Kind::kMetric:
      case Expr::Kind::kHole:
      case Expr::Kind::kNeg:
      case Expr::Kind::kBinary:
      case Expr::Kind::kIte:
      case Expr::Kind::kChoice:
        raise(/*numeric_position=*/false);
        return;
    }
  }

  std::vector<internal::BatchInstr> code;

 private:
  void push_indexed(internal::BatchInstr::Op op, std::size_t id) {
    internal::BatchInstr in{op};
    in.a = static_cast<std::int32_t>(id);
    code.push_back(in);
  }

  void raise(bool numeric_position) {
    internal::BatchInstr in{internal::BatchInstr::Op::kRaise};
    in.a = numeric_position ? 0 : 1;
    code.push_back(in);
  }
};

// --- Lane-ISA dispatch -------------------------------------------------------

LaneIsa detect_lane_isa() {
  if (const char* env = std::getenv("COMPSYNTH_LANE_ISA")) {
    const std::string_view want(env);
    if (want == "scalar") return LaneIsa::kScalar;
    if (want == "avx2") {
      return lane_isa_supported(LaneIsa::kAvx2) ? LaneIsa::kAvx2
                                                : LaneIsa::kScalar;
    }
    // "auto" or anything unrecognized falls through to detection.
  }
  return lane_isa_supported(LaneIsa::kAvx2) ? LaneIsa::kAvx2
                                            : LaneIsa::kScalar;
}

std::atomic<std::uint8_t>& lane_isa_cell() {
  static std::atomic<std::uint8_t> cell{
      static_cast<std::uint8_t>(detect_lane_isa())};
  return cell;
}

}  // namespace

CompiledSketch::CompiledSketch(const Sketch& sketch)
    : CompiledSketch(*sketch.body(), sketch.metrics().size(),
                     sketch.holes().size()) {}

CompiledSketch::CompiledSketch(const Expr& body, std::size_t metric_count,
                               std::size_t hole_count)
    : metric_count_(metric_count), hole_count_(hole_count) {
  const ExprPtr folded =
      fold(std::make_shared<const Expr>(body));
  Emitter emitter;
  emitter.numeric(*folded);
  tape_ = std::move(emitter.tape);
  tables_ = std::move(emitter.tables);
  max_stack_ = need_numeric(*folded);
}

double CompiledSketch::run(std::span<const double> metrics,
                           std::span<const double> holes,
                           double* stack) const {
  using Op = Instr::Op;
  const Instr* code = tape_.data();
  const auto end = static_cast<std::ptrdiff_t>(tape_.size());
  std::size_t sp = 0;
  for (std::ptrdiff_t pc = 0; pc < end; ++pc) {
    const Instr& in = code[pc];
    switch (in.op) {
      case Op::kPushConst:
        stack[sp++] = in.value;
        break;
      case Op::kPushMetric:
        stack[sp++] = metrics[static_cast<std::size_t>(in.a)];
        break;
      case Op::kPushHole:
        stack[sp++] = holes[static_cast<std::size_t>(in.a)];
        break;
      case Op::kNeg:
        stack[sp - 1] = -stack[sp - 1];
        break;
      case Op::kAdd:
        --sp;
        stack[sp - 1] += stack[sp];
        break;
      case Op::kSub:
        --sp;
        stack[sp - 1] -= stack[sp];
        break;
      case Op::kMul:
        --sp;
        stack[sp - 1] *= stack[sp];
        break;
      case Op::kDiv: {
        --sp;
        const double divisor = stack[sp];
        if (divisor == 0) throw EvalError("division by zero");
        stack[sp - 1] /= divisor;
        break;
      }
      case Op::kMin:
        --sp;
        stack[sp - 1] = std::min(stack[sp - 1], stack[sp]);
        break;
      case Op::kMax:
        --sp;
        stack[sp - 1] = std::max(stack[sp - 1], stack[sp]);
        break;
      case Op::kLt:
        --sp;
        stack[sp - 1] = stack[sp - 1] < stack[sp] ? 1.0 : 0.0;
        break;
      case Op::kLe:
        --sp;
        stack[sp - 1] = stack[sp - 1] <= stack[sp] ? 1.0 : 0.0;
        break;
      case Op::kGt:
        --sp;
        stack[sp - 1] = stack[sp - 1] > stack[sp] ? 1.0 : 0.0;
        break;
      case Op::kGe:
        --sp;
        stack[sp - 1] = stack[sp - 1] >= stack[sp] ? 1.0 : 0.0;
        break;
      case Op::kEq:
        --sp;
        stack[sp - 1] = stack[sp - 1] == stack[sp] ? 1.0 : 0.0;
        break;
      case Op::kNe:
        --sp;
        stack[sp - 1] = stack[sp - 1] != stack[sp] ? 1.0 : 0.0;
        break;
      case Op::kAnd:
        --sp;
        stack[sp - 1] = (stack[sp - 1] != 0 && stack[sp] != 0) ? 1.0 : 0.0;
        break;
      case Op::kOr:
        --sp;
        stack[sp - 1] = (stack[sp - 1] != 0 || stack[sp] != 0) ? 1.0 : 0.0;
        break;
      case Op::kNot:
        stack[sp - 1] = stack[sp - 1] == 0 ? 1.0 : 0.0;
        break;
      case Op::kJump:
        pc += in.a;
        break;
      case Op::kJumpIfZero:
        if (stack[--sp] == 0) pc += in.a;
        break;
      case Op::kChoice: {
        const auto raw = static_cast<std::int64_t>(
            std::llround(holes[static_cast<std::size_t>(in.a)]));
        const std::size_t base = static_cast<std::size_t>(in.b);
        const std::int64_t count = tables_[base];
        const auto idx =
            static_cast<std::size_t>(std::clamp<std::int64_t>(raw, 0, count - 1));
        pc += tables_[base + 1 + idx];
        break;
      }
      case Op::kRaise:
        throw EvalError(in.a == 0 ? kNumericPositionError : kBoolPositionError);
    }
  }
  return stack[sp - 1];
}

double CompiledSketch::eval(std::span<const double> metrics,
                            std::span<const double> holes) const {
  if (metrics.size() != metric_count_) {
    throw EvalError("eval: scenario arity does not match sketch metrics");
  }
  if (holes.size() != hole_count_) {
    throw EvalError("eval: hole values arity does not match sketch holes");
  }
  if (max_stack_ <= kInlineStack) {
    double stack[kInlineStack];
    return run(metrics, holes, stack);
  }
  std::vector<double> stack(max_stack_);
  return run(metrics, holes, stack.data());
}

void CompiledSketch::eval_many(std::span<const double> metrics_flat,
                               std::span<const double> holes,
                               std::span<double> out) const {
  if (metrics_flat.size() != out.size() * metric_count_) {
    throw EvalError("eval_many: flat metric buffer does not match out size");
  }
  if (holes.size() != hole_count_) {
    throw EvalError("eval: hole values arity does not match sketch holes");
  }
  double inline_stack[kInlineStack];
  std::vector<double> heap_stack;
  double* stack = inline_stack;
  if (max_stack_ > kInlineStack) {
    heap_stack.resize(max_stack_);
    stack = heap_stack.data();
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = run(metrics_flat.subspan(i * metric_count_, metric_count_), holes,
                 stack);
  }
}

// --- BatchTape ---------------------------------------------------------------

namespace internal {

void run_batch_scalar(const BatchProgram& p, const double* metrics,
                      const double* holes, double* out, LaneError* err) {
  run_batch<ScalarLanes>(p, metrics, holes, out, err);
}

unsigned lane_gt_bits_scalar(const double* a, const double* b) {
  return run_gt_bits<ScalarLanes>(a, b);
}

unsigned lane_abs_diff_gt_bits_scalar(const double* a, const double* b,
                                      double bound) {
  return run_abs_diff_gt_bits<ScalarLanes>(a, b, bound);
}

}  // namespace internal

unsigned lane_gt_bits(const double* a, const double* b) {
#if defined(COMPSYNTH_HAVE_AVX2)
  if (active_lane_isa() == LaneIsa::kAvx2) {
    return internal::lane_gt_bits_avx2(a, b);
  }
#endif
  return internal::lane_gt_bits_scalar(a, b);
}

unsigned lane_abs_diff_gt_bits(const double* a, const double* b, double bound) {
#if defined(COMPSYNTH_HAVE_AVX2)
  if (active_lane_isa() == LaneIsa::kAvx2) {
    return internal::lane_abs_diff_gt_bits_avx2(a, b, bound);
  }
#endif
  return internal::lane_abs_diff_gt_bits_scalar(a, b, bound);
}

const char* lane_isa_name(LaneIsa isa) {
  switch (isa) {
    case LaneIsa::kScalar: return "scalar";
    case LaneIsa::kAvx2: return "avx2";
  }
  return "unknown";
}

bool lane_isa_supported(LaneIsa isa) {
  switch (isa) {
    case LaneIsa::kScalar:
      return true;
    case LaneIsa::kAvx2:
#if defined(COMPSYNTH_HAVE_AVX2) && defined(__GNUC__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

LaneIsa active_lane_isa() {
  return static_cast<LaneIsa>(lane_isa_cell().load(std::memory_order_relaxed));
}

bool set_active_lane_isa(LaneIsa isa) {
  if (!lane_isa_supported(isa)) return false;
  lane_isa_cell().store(static_cast<std::uint8_t>(isa),
                        std::memory_order_relaxed);
  return true;
}

const char* lane_error_message(LaneError err) {
  switch (err) {
    case LaneError::kNone: return nullptr;
    case LaneError::kDivZero: return "division by zero";
    case LaneError::kRaiseNumeric: return kNumericPositionError;
    case LaneError::kRaiseBool: return kBoolPositionError;
  }
  return nullptr;
}

void throw_lane_error(LaneError err) {
  const char* message = lane_error_message(err);
  throw EvalError(message != nullptr ? message : "lane error");
}

BatchTape::BatchTape(const Sketch& sketch)
    : BatchTape(*sketch.body(), sketch.metrics().size(),
                sketch.holes().size()) {}

BatchTape::BatchTape(const Expr& body, std::size_t metric_count,
                     std::size_t hole_count)
    : program_(std::make_unique<internal::BatchProgram>()) {
  const ExprPtr folded = fold(std::make_shared<const Expr>(body));
  BatchEmitter emitter;
  emitter.numeric(*folded);
  program_->code = std::move(emitter.code);
  program_->metric_count = metric_count;
  program_->hole_count = hole_count;
  program_->max_stack = batch_need_numeric(*folded);
  program_->max_frames = batch_frames_bound(*folded);
}

BatchTape::BatchTape(BatchTape&&) noexcept = default;
BatchTape& BatchTape::operator=(BatchTape&&) noexcept = default;
BatchTape::~BatchTape() = default;

std::size_t BatchTape::metric_count() const { return program_->metric_count; }
std::size_t BatchTape::hole_count() const { return program_->hole_count; }
std::size_t BatchTape::op_count() const { return program_->code.size(); }
std::size_t BatchTape::max_stack() const { return program_->max_stack; }
std::size_t BatchTape::max_mask_depth() const { return program_->max_frames; }

void BatchTape::eval_lanes(std::span<const double> metrics,
                           std::span<const double> holes_lanes, double* out,
                           LaneError* err) const {
  if (metrics.size() != program_->metric_count) {
    throw EvalError("eval: scenario arity does not match sketch metrics");
  }
  if (holes_lanes.size() != program_->hole_count * kLaneWidth) {
    throw EvalError("eval: hole values arity does not match sketch holes");
  }
#if defined(COMPSYNTH_HAVE_AVX2)
  if (active_lane_isa() == LaneIsa::kAvx2) {
    internal::run_batch_avx2(*program_, metrics.data(), holes_lanes.data(),
                             out, err);
    return;
  }
#endif
  internal::run_batch_scalar(*program_, metrics.data(), holes_lanes.data(),
                             out, err);
}

}  // namespace compsynth::sketch
