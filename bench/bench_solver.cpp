// A/B benchmark for the solver acceleration layer (docs/SOLVER.md) on the
// SWAN Table-1 workload: each variant is a complete comparative-synthesis
// run (Fig. 2a sketch, Fig. 2b target, ground-truth oracle) with one
// combination of accelerations enabled.
//
//   z3_baseline     fresh Z3 context per query, no pre-checks, no cache
//   z3_incremental  push/pop encoding reuse only
//   z3_accelerated  incremental + interval pre-checks + cold result cache
//   z3_cache_warm   accelerated re-run sharing the previous run's cache
//   portfolio_race  GridFinder vs Z3Finder racing every query
//   grid            version-space back-end, as a reference point
//
// The z3_* variants must ask the oracle the byte-identical query sequence
// and land on the identical objective as the baseline — asserted, not
// assumed: the accelerations are pure speed (docs/SOLVER.md §Soundness).
// portfolio_race answers queries with whichever leg wins, so its sequence
// legitimately differs; it is validated by ranking-equivalence of its
// learned objective against the latent target instead.
//
// Usage:
//   bench_solver [--out PATH]  full runs; writes BENCH_solver.json
//   bench_solver --smoke       truncated runs for CTest — exercises every
//                              variant and fails on any sequence/objective
//                              divergence, but does not write JSON.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "oracle/ground_truth.h"
#include "oracle/oracle.h"
#include "pref/scenario.h"
#include "sketch/library.h"
#include "solver/equivalence.h"
#include "solver/solver_cache.h"
#include "synth/synthesizer.h"
#include "util/thread_pool.h"

namespace compsynth::bench {
namespace {

std::string scenario_key(const pref::Scenario& s) {
  std::string out;
  char buf[40];
  for (double m : s.metrics) {
    std::snprintf(buf, sizeof buf, "%.17g,", m);
    out += buf;
  }
  return out;
}

// Ground-truth SWAN oracle that logs one canonical line per query (scenarios
// and the answer given), so two synthesis runs can be compared interaction
// for interaction. Only this outer oracle's counters feed the synthesizer;
// the contained oracle is just the answer source.
class RecordingOracle final : public oracle::Oracle {
 public:
  RecordingOracle()
      : inner_(sketch::swan_sketch(), sketch::swan_target()) {}

  const std::vector<std::string>& queries() const { return queries_; }

 protected:
  oracle::Preference do_compare(const pref::Scenario& a,
                                const pref::Scenario& b) override {
    const oracle::Preference p = inner_.compare(a, b);
    const char verdict = p == oracle::Preference::kFirst    ? 'a'
                         : p == oracle::Preference::kSecond ? 'b'
                                                            : 't';
    queries_.push_back("cmp " + scenario_key(a) + " " + scenario_key(b) +
                       " -> " + verdict);
    return p;
  }

  oracle::RankingResponse do_rank(
      std::span<const pref::Scenario> scenarios) override {
    const oracle::RankingResponse r = inner_.rank(scenarios);
    std::string line = "rank";
    for (const pref::Scenario& s : scenarios) line += ' ' + scenario_key(s);
    line += " ->";
    for (const auto& p : r.preferences) {
      line += ' ' + std::to_string(p.better) + '>' + std::to_string(p.worse);
    }
    for (const auto& t : r.ties) {
      line += ' ' + std::to_string(t.a) + '=' + std::to_string(t.b);
    }
    queries_.push_back(std::move(line));
    return r;
  }

 private:
  oracle::GroundTruthOracle inner_;
  std::vector<std::string> queries_;
};

enum class Backend { kZ3, kPortfolio, kGrid };

struct VariantRun {
  synth::SynthesisResult result;
  std::vector<std::string> queries;
};

VariantRun run_variant(const std::string& name, Backend backend,
                       bool incremental, bool precheck,
                       std::shared_ptr<solver::SolverCache> cache,
                       int max_iterations) {
  const sketch::Sketch& sk = sketch::swan_sketch();
  RecordingOracle user;
  synth::SynthesisConfig config;
  config.seed = 7;
  config.max_iterations = max_iterations;
  config.finder.incremental = incremental;
  config.finder.interval_precheck = precheck;
  config.solver_cache = std::move(cache);

  synth::Synthesizer synthesizer =
      backend == Backend::kZ3 ? synth::make_z3_synthesizer(sk, config)
      : backend == Backend::kPortfolio
          ? synth::make_portfolio_synthesizer(sk, config)
          : synth::make_grid_synthesizer(sk, config);

  VariantRun run;
  run.result = synthesizer.run(user);
  run.queries = user.queries();
  std::cout << name << ": " << run.result.iterations << " iterations, "
            << run.result.total_solver_seconds << " s solver ("
            << run.result.average_iteration_seconds << " s/iter)\n"
            << std::flush;
  return run;
}

bool finished(const VariantRun& run, bool smoke) {
  if (run.result.status == synth::SynthesisStatus::kConverged) return true;
  // Truncated smoke runs legitimately stop at the iteration cap.
  return smoke && run.result.status == synth::SynthesisStatus::kIterationLimit;
}

double speedup_vs(const VariantRun& baseline, const VariantRun& v) {
  if (v.result.average_iteration_seconds <= 0) return 0;
  return baseline.result.average_iteration_seconds /
         v.result.average_iteration_seconds;
}

int run(bool smoke, const std::string& out_path) {
  const int max_iterations = smoke ? 4 : 500;
  const std::int64_t candidates = sketch::swan_sketch().candidate_space_size();
  std::cout << "workload: SWAN Table-1 synthesis (" << candidates
            << " candidates), seed 7, max " << max_iterations
            << " iterations\n";

  // One cache shared by z3_accelerated (which fills it cold) and
  // z3_cache_warm (which replays it); the portfolio gets its own.
  auto z3_cache = std::make_shared<solver::SolverCache>(4096);
  auto portfolio_cache = std::make_shared<solver::SolverCache>(4096);

  const VariantRun baseline = run_variant(
      "z3_baseline", Backend::kZ3, false, false, nullptr, max_iterations);
  const VariantRun incremental = run_variant(
      "z3_incremental", Backend::kZ3, true, false, nullptr, max_iterations);
  const VariantRun accelerated = run_variant(
      "z3_accelerated", Backend::kZ3, true, true, z3_cache, max_iterations);
  const VariantRun warm = run_variant(
      "z3_cache_warm", Backend::kZ3, true, true, z3_cache, max_iterations);
  const VariantRun portfolio =
      run_variant("portfolio_race", Backend::kPortfolio, true, true,
                  portfolio_cache, max_iterations);
  const VariantRun grid = run_variant("grid", Backend::kGrid, true, true,
                                      nullptr, max_iterations);

  // --- Validity: accelerations must not change what the user experiences. --
  bool ok = true;
  const auto check = [&](bool cond, const std::string& what) {
    if (!cond) {
      std::cerr << "FAIL: " << what << "\n";
      ok = false;
    }
  };

  for (const auto& [name, v] :
       std::initializer_list<std::pair<const char*, const VariantRun*>>{
           {"z3_baseline", &baseline},
           {"z3_incremental", &incremental},
           {"z3_accelerated", &accelerated},
           {"z3_cache_warm", &warm},
           {"portfolio_race", &portfolio},
           {"grid", &grid}}) {
    check(finished(*v, smoke), std::string(name) + " did not finish");
  }

  const bool sequences_identical = incremental.queries == baseline.queries &&
                                   accelerated.queries == baseline.queries &&
                                   warm.queries == baseline.queries;
  check(sequences_identical,
        "z3 variants asked a different oracle query sequence than baseline");

  const bool objectives_identical =
      baseline.result.objective.has_value() &&
      incremental.result.objective == baseline.result.objective &&
      accelerated.result.objective == baseline.result.objective &&
      warm.result.objective == baseline.result.objective;
  check(objectives_identical,
        "z3 variants learned a different objective than baseline");

  // Full runs must additionally be *correct*: ranking-equivalent to the
  // latent target (the portfolio/grid objectives may be syntactically
  // different representatives of the same ranking).
  bool portfolio_equivalent = true;
  if (!smoke) {
    const sketch::HoleAssignment target = sketch::swan_target();
    const auto equivalent = [&](const VariantRun& v) {
      return v.result.objective.has_value() &&
             solver::ranking_equivalent(sketch::swan_sketch(),
                                        *v.result.objective, target);
    };
    check(equivalent(baseline), "z3_baseline objective not equivalent to target");
    portfolio_equivalent = equivalent(portfolio);
    check(portfolio_equivalent,
          "portfolio_race objective not equivalent to target");
    check(equivalent(grid), "grid objective not equivalent to target");
  }

  if (!ok) return 1;
  if (smoke) {
    std::cout << "smoke: all variants agree\n";
    return 0;
  }

  const double headline = speedup_vs(baseline, portfolio);
  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "FAIL: cannot write " << out_path << "\n";
    return 1;
  }
  const auto row = [&](const char* name, const VariantRun& v,
                       bool last = false) {
    json << "    \"" << name << "\": {\n"
         << "      \"iterations\": " << v.result.iterations << ",\n"
         << "      \"total_solver_seconds\": " << v.result.total_solver_seconds
         << ",\n"
         << "      \"mean_iteration_seconds\": "
         << v.result.average_iteration_seconds << ",\n"
         << "      \"speedup_vs_baseline\": " << speedup_vs(baseline, v)
         << "\n    }" << (last ? "\n" : ",\n");
  };
  json << "{\n"
       << "  \"bench\": \"solver\",\n"
       << "  \"workload\": \"swan_table1\",\n"
       << "  \"candidates\": " << candidates << ",\n"
       << "  \"seed\": 7,\n"
       << "  \"threads_available\": " << util::ThreadPool::shared().size()
       << ",\n"
       << "  \"variants\": {\n";
  row("z3_baseline", baseline);
  row("z3_incremental", incremental);
  row("z3_accelerated", accelerated);
  row("z3_cache_warm", warm);
  row("portfolio_race", portfolio);
  row("grid", grid, /*last=*/true);
  json << "  },\n"
       << "  \"sequences_identical\": "
       << (sequences_identical ? "true" : "false") << ",\n"
       << "  \"objectives_identical\": "
       << (objectives_identical ? "true" : "false") << ",\n"
       << "  \"portfolio_objective_equivalent_to_target\": "
       << (portfolio_equivalent ? "true" : "false") << ",\n"
       << "  \"speedup_vs_baseline\": " << headline << ",\n"
       << "  \"meets_5x_target\": " << (headline >= 5.0 ? "true" : "false")
       << "\n}\n";
  std::cout << "wrote " << out_path << " (portfolio speedup " << headline
            << "x vs non-incremental z3)\n";
  return 0;
}

}  // namespace
}  // namespace compsynth::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_solver.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_solver [--smoke] [--out PATH]\n";
      return 2;
    }
  }
  return compsynth::bench::run(smoke, out_path);
}
