# Empty compiler generated dependencies file for test_homenet.
# This may be replaced when dependencies are built.
