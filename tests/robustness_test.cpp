// Robustness-oriented tests: drifting user intent, query logging, and
// homenet end-to-end synthesis.
#include <gtest/gtest.h>

#include <sstream>

#include "homenet/policy.h"
#include "oracle/ground_truth.h"
#include "oracle/variants.h"
#include "sketch/library.h"
#include "solver/equivalence.h"
#include "solver/z3_finder.h"
#include "synth/synthesizer.h"

namespace compsynth {
namespace {

using oracle::DriftingOracle;
using oracle::GroundTruthOracle;
using oracle::Preference;

std::unique_ptr<GroundTruthOracle> truth(const sketch::HoleAssignment& target) {
  return std::make_unique<GroundTruthOracle>(sketch::swan_sketch(), target, 1e-4);
}

TEST(Drifting, SwitchesIntentAtTheDriftPoint) {
  // Before: throughput lover. After: latency hater.
  DriftingOracle user(truth(sketch::swan_target_with(0, 200, 0, 0)),
                      truth(sketch::swan_target_with(0, 200, 5, 5)), 2);
  const pref::Scenario fast_small{{1, 5}};
  const pref::Scenario slow_big{{9, 150}};
  // First two answers: prefer throughput.
  EXPECT_EQ(user.compare(slow_big, fast_small), Preference::kFirst);
  EXPECT_EQ(user.compare(slow_big, fast_small), Preference::kFirst);
  EXPECT_TRUE(user.drifted());
  // Afterwards: heavy latency penalty flips the call.
  EXPECT_EQ(user.compare(slow_big, fast_small), Preference::kSecond);
}

TEST(Drifting, RejectsBadConstruction) {
  EXPECT_THROW(DriftingOracle(nullptr, truth(sketch::swan_target()), 1),
               std::invalid_argument);
  EXPECT_THROW(DriftingOracle(truth(sketch::swan_target()), nullptr, 1),
               std::invalid_argument);
  EXPECT_THROW(DriftingOracle(truth(sketch::swan_target()),
                              truth(sketch::swan_target()), -1),
               std::invalid_argument);
}

TEST(Drifting, RepairLetsSynthesisTrackTheNewIntent) {
  const auto& sk = sketch::swan_sketch();
  const auto final_intent = sketch::swan_target_with(2, 60, 1, 3);
  synth::SynthesisConfig config;
  config.seed = 77;
  config.tolerate_inconsistency = true;
  config.max_iterations = 120;
  synth::Synthesizer s = synth::make_grid_synthesizer(sk, config);

  // The user re-calibrates after 8 answers; early answers follow a very
  // different objective and later contradict the record.
  DriftingOracle user(truth(sketch::swan_target_with(8, 10, 5, 0)),
                      truth(final_intent), 8);
  const synth::SynthesisResult r = s.run(user);
  // The loop must terminate; with repair it usually converges, and when it
  // converges the result is consistent with the *final* intent on the
  // scenarios asked after the drift.
  EXPECT_NE(r.status, synth::SynthesisStatus::kSolverGaveUp);
  EXPECT_LE(r.iterations, 120);
}

TEST(QueryLog, EmitsSmtLib) {
  const auto& sk = sketch::swan_sketch();
  solver::Z3Finder finder(sk);
  std::ostringstream log;
  finder.set_query_log(&log);
  pref::PreferenceGraph g;
  const auto a = g.intern(pref::Scenario{{2, 10}});
  const auto b = g.intern(pref::Scenario{{5, 10}});
  g.add_preference(b, a);
  (void)finder.find_distinguishing(g, 1);
  const std::string text = log.str();
  EXPECT_NE(text.find("compsynth query"), std::string::npos);
  EXPECT_NE(text.find("declare-fun"), std::string::npos);
  EXPECT_NE(text.find("a_tp_thrsh"), std::string::npos);
  EXPECT_NE(text.find("(check-sat)"), std::string::npos);
}

TEST(HomenetSynth, LearnsHouseholdObjectiveEndToEnd) {
  const auto& sk = sketch::homenet_sketch();
  sketch::HoleAssignment latent;
  latent.index = {sk.holes()[0].nearest_index(20),
                  sk.holes()[1].nearest_index(4),
                  sk.holes()[2].nearest_index(1)};
  synth::SynthesisConfig config;
  config.seed = 4;
  config.max_iterations = 200;
  synth::Synthesizer s = synth::make_grid_synthesizer(sk, config);
  oracle::GroundTruthOracle household(sk, latent, config.finder.tie_tolerance);
  const synth::SynthesisResult r = s.run(household);
  ASSERT_EQ(r.status, synth::SynthesisStatus::kConverged);
  ASSERT_TRUE(r.objective.has_value());
  EXPECT_TRUE(solver::ranking_equivalent(sk, *r.objective, latent, config.finder));
}

}  // namespace
}  // namespace compsynth
