
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/domain.cpp" "src/solver/CMakeFiles/compsynth_solver.dir/domain.cpp.o" "gcc" "src/solver/CMakeFiles/compsynth_solver.dir/domain.cpp.o.d"
  "/root/repo/src/solver/equivalence.cpp" "src/solver/CMakeFiles/compsynth_solver.dir/equivalence.cpp.o" "gcc" "src/solver/CMakeFiles/compsynth_solver.dir/equivalence.cpp.o.d"
  "/root/repo/src/solver/grid_finder.cpp" "src/solver/CMakeFiles/compsynth_solver.dir/grid_finder.cpp.o" "gcc" "src/solver/CMakeFiles/compsynth_solver.dir/grid_finder.cpp.o.d"
  "/root/repo/src/solver/z3_encoder.cpp" "src/solver/CMakeFiles/compsynth_solver.dir/z3_encoder.cpp.o" "gcc" "src/solver/CMakeFiles/compsynth_solver.dir/z3_encoder.cpp.o.d"
  "/root/repo/src/solver/z3_finder.cpp" "src/solver/CMakeFiles/compsynth_solver.dir/z3_finder.cpp.o" "gcc" "src/solver/CMakeFiles/compsynth_solver.dir/z3_finder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sketch/CMakeFiles/compsynth_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/pref/CMakeFiles/compsynth_pref.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/compsynth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
