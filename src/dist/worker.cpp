#include "dist/worker.h"

#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "pref/serialize.h"
#include "sketch/parser.h"
#include "util/checksum.h"
#include "util/timer.h"

namespace compsynth::dist {

Worker::Worker(WorkerConfig config)
    : config_(std::move(config)),
      faults_(config_.faults),
      server_(serve::LineServerConfig{config_.listen, config_.backlog},
              [this](const std::string& line, serve::LineControl* ctl) {
                return handle_line(line, ctl);
              }) {}

void Worker::start() { server_.start(); }
std::string Worker::endpoint() const { return server_.endpoint(); }
void Worker::wait() { server_.wait(); }
void Worker::stop() { server_.stop(); }

std::shared_ptr<const solver::GridFinder> Worker::finder_for(
    const std::string& sketch_text, double tie) {
  {
    const util::MutexLock lk(mu_);
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      if (engines_[i].sketch_text == sketch_text && engines_[i].tie == tie) {
        CacheEntry hit = engines_[i];
        engines_.erase(engines_.begin() + static_cast<std::ptrdiff_t>(i));
        engines_.insert(engines_.begin(), hit);
        return hit.finder;
      }
    }
  }
  // Compile outside the lock: parsing + tape lowering can be slow and must
  // not serialize unrelated shard requests. A racing request for the same
  // sketch may compile twice; both engines are identical, one wins the
  // cache slot, the loser is dropped when its shared_ptr count drains.
  sketch::Sketch sk = sketch::parse_sketch(sketch_text);
  solver::GridFinderConfig fc;
  fc.base.tie_tolerance = tie;
  fc.eval_backend = solver::EvalBackend::kBatch;
  fc.threads = 1;  // one shard request = one range; parallelism is the
                   // coordinator's job (many shards across many workers)
  auto finder = std::make_shared<const solver::GridFinder>(std::move(sk), fc);
  {
    const util::MutexLock lk(mu_);
    engines_.insert(engines_.begin(),
                    CacheEntry{sketch_text, tie, finder});
    if (engines_.size() > kMaxCachedEngines) engines_.pop_back();
  }
  return finder;
}

std::string Worker::handle_line(const std::string& line,
                                serve::LineControl* ctl) {
  std::variant<WireRequest, serve::ParseError> parsed =
      parse_wire_request(line);
  if (const serve::ParseError* err = std::get_if<serve::ParseError>(&parsed)) {
    config_.obs.count("dist.worker.requests");
    return serve::error_response(err->code, err->message);
  }
  const WireRequest& req = std::get<WireRequest>(parsed);
  config_.obs.count("dist.worker.requests");
  switch (req.verb) {
    case WireVerb::kHello: {
      serve::JsonWriter w;
      return w.integer("v", kWireVersion)
          .boolean("ok", true)
          .str("verb", "hello")
          .integer("proto", kWireVersion)
          .done();
    }
    case WireVerb::kPing: {
      serve::JsonWriter w;
      return w.integer("v", kWireVersion)
          .boolean("ok", true)
          .str("verb", "ping")
          .done();
    }
    case WireVerb::kShutdown: {
      ctl->stop_after = true;  // ack is on the wire before the stop begins
      serve::JsonWriter w;
      return w.integer("v", kWireVersion)
          .boolean("ok", true)
          .str("verb", "shutdown")
          .done();
    }
    case WireVerb::kShard:
      return handle_shard(req.shard, ctl);
  }
  return serve::error_response(serve::kErrVerb, "unhandled verb");
}

std::string Worker::handle_shard(const ShardRequest& req,
                                 serve::LineControl* ctl) {
  const util::Stopwatch watch;
  std::string fault_kind;
  std::string response;
  bool ok = false;
  try {
    if (faults_.worker_stall()) {
      // Stall past the coordinator's per-shard deadline; the request still
      // completes afterwards, but the coordinator has moved on and the late
      // response dies with the timed-out connection.
      fault_kind = "stall";
      util::sleep_seconds(config_.faults.worker_stall_s);
    }
    const std::shared_ptr<const solver::GridFinder> finder =
        finder_for(req.sketch, req.tie);
    const pref::PreferenceGraph graph =
        pref::deserialize(req.graph, /*allow_inconsistent=*/true);
    std::string blob = finder->sync_shard_blob(graph, req.shard, req.lo, req.hi);
    long long count =
        static_cast<long long>(solver::GridFinder::parse_shard_blob(blob)
                                   .linears.size());
    if (faults_.worker_truncate()) {
      // Valid JSON, valid CRC, bitmap cut mid-record: exactly the torn blob
      // the coordinator's structural validation must catch (the CRC is
      // recomputed over the damaged bytes, so only parse_shard_blob can).
      fault_kind = "truncate";
      const std::size_t space = blob.rfind(' ');
      if (space != std::string::npos && space + 2 < blob.size()) {
        blob.erase(space + 1 + (blob.size() - space - 1) / 2);
      }
    }
    serve::JsonWriter w;
    w.integer("v", kWireVersion)
        .boolean("ok", true)
        .str("verb", "shard")
        .str("job", req.job)
        .integer("shard", static_cast<long long>(req.shard))
        .integer("lo", req.lo)
        .integer("hi", req.hi)
        .integer("count", count)
        .str("crc", util::crc32_hex(util::crc32(blob)))
        .str("blob", blob)
        .num("secs", watch.elapsed_seconds());
    response = w.done();
    ok = true;
  } catch (const std::exception& ex) {
    response = serve::error_response(serve::kErrInternal, ex.what());
  }
  if (ok && faults_.worker_drop()) {
    // Drop the connection mid-response: the coordinator sees a torn line
    // (or EOF) and treats this worker as failed for the attempt.
    fault_kind = "drop";
    ctl->send_prefix = response.size() / 2;
  }
  if (ok && faults_.worker_crash_after_ack()) {
    // The response lands, then the whole worker goes down — every other
    // in-flight shard on this worker orphans and must be re-dispatched.
    fault_kind = "crash_after_ack";
    ctl->abort_after = true;
  }
  if (!fault_kind.empty()) config_.obs.count("dist.worker.faults");
  if (config_.obs.tracing()) {
    obs::TraceEvent ev("worker_shard");
    ev.str("job", req.job);
    ev.integer("shard", static_cast<long long>(req.shard));
    ev.integer("lo", req.lo);
    ev.integer("hi", req.hi);
    ev.boolean("ok", ok);
    if (!fault_kind.empty()) ev.str("fault", fault_kind);
    ev.num("secs", watch.elapsed_seconds());
    config_.obs.emit(ev);
  }
  return response;
}

}  // namespace compsynth::dist
