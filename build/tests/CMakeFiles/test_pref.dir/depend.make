# Empty dependencies file for test_pref.
# This may be replaced when dependencies are built.
