# Empty dependencies file for test_abr_synth.
# This may be replaced when dependencies are built.
