file(REMOVE_RECURSE
  "CMakeFiles/compsynth_te.dir/allocator.cpp.o"
  "CMakeFiles/compsynth_te.dir/allocator.cpp.o.d"
  "CMakeFiles/compsynth_te.dir/lp/simplex.cpp.o"
  "CMakeFiles/compsynth_te.dir/lp/simplex.cpp.o.d"
  "CMakeFiles/compsynth_te.dir/scenario_gen.cpp.o"
  "CMakeFiles/compsynth_te.dir/scenario_gen.cpp.o.d"
  "CMakeFiles/compsynth_te.dir/topology.cpp.o"
  "CMakeFiles/compsynth_te.dir/topology.cpp.o.d"
  "CMakeFiles/compsynth_te.dir/tunnel.cpp.o"
  "CMakeFiles/compsynth_te.dir/tunnel.cpp.o.d"
  "libcompsynth_te.a"
  "libcompsynth_te.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsynth_te.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
