#!/usr/bin/env bash
# Documentation code-block extraction check: every fenced ```sh block in
# docs/*.md and README.md must be valid shell (bash -n), and every fenced
# ```sketch block must parse diagnostic-free under the strict sketch
# linter. Registered as the `docs_blocks` ctest; scripts/ci_full.sh runs it
# too. Keeps the copy-pasteable commands in docs/GUIDE.md honest.
#
# Usage: scripts/check_docs_blocks.sh [repo-root] [path-to-compsynth_lint]
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
lint="${2:-$root/build/tools/compsynth_lint}"

if [ ! -x "$lint" ]; then
  echo "check_docs_blocks: linter '$lint' not found (build the tree first)" >&2
  exit 1
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail=0
n_sh=0
n_sketch=0

for doc in "$root"/docs/*.md "$root"/README.md; do
  [ -f "$doc" ] || continue
  rel="${doc#"$root"/}"
  base="$tmp/$(basename "$doc" .md)"

  # Split the document's ```sh / ```sketch fences into one file per block,
  # named <base>.<block#>.<lang>, remembering the opening line number.
  awk -v base="$base" '
    /^```(sh|sketch)$/ && !in_block {
      in_block = 1; lang = substr($0, 4); n += 1
      file = sprintf("%s.%03d.%s", base, n, lang)
      printf "" > file
      print NR > sprintf("%s.line", file)
      next
    }
    /^```/ && in_block { in_block = 0; close(file); next }
    in_block { print >> file }
  ' "$doc"

  for block in "$base".*.sh "$base".*.sketch; do
    [ -f "$block" ] || continue
    line="$(cat "$block.line")"
    case "$block" in
      *.sh)
        n_sh=$((n_sh + 1))
        if ! bash -n "$block" 2>"$tmp/err"; then
          echo "FAIL $rel:$line (sh block does not parse):" >&2
          sed "s|$block|<block>|" "$tmp/err" >&2
          fail=1
        fi
        ;;
      *.sketch)
        n_sketch=$((n_sketch + 1))
        if ! "$lint" --strict "$block" >"$tmp/err" 2>&1; then
          echo "FAIL $rel:$line (sketch block rejected by the linter):" >&2
          sed "s|$block|<block>|" "$tmp/err" >&2
          fail=1
        fi
        ;;
    esac
  done
done

if [ $((n_sh + n_sketch)) -eq 0 ]; then
  echo "check_docs_blocks: no sh/sketch blocks found — fence regex drifted?" >&2
  exit 1
fi
if [ "$fail" -ne 0 ]; then
  echo "check_docs_blocks: FAILED" >&2
  exit 1
fi
echo "check_docs_blocks: $n_sh sh + $n_sketch sketch block(s) OK"
