#include "te/allocator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "te/lp/simplex.h"

namespace compsynth::te {

namespace {

constexpr double kEps = 1e-7;

// Flat variable layout: one LP variable per (flow, tunnel) pair, flows in
// request order, tunnels in declaration order. `extra` trailing variables
// can be appended (e.g. the max-min "t").
struct VarMap {
  std::vector<std::size_t> offset;
  std::size_t tunnel_vars = 0;

  static VarMap build(const std::vector<FlowRequest>& requests) {
    VarMap m;
    m.offset.reserve(requests.size());
    for (const FlowRequest& r : requests) {
      m.offset.push_back(m.tunnel_vars);
      m.tunnel_vars += r.tunnels.size();
    }
    return m;
  }

  std::size_t at(std::size_t flow, std::size_t tunnel) const {
    return offset[flow] + tunnel;
  }
};

void validate(const std::vector<FlowRequest>& requests) {
  for (const FlowRequest& r : requests) {
    if (r.tunnels.empty()) throw std::invalid_argument("allocator: flow with no tunnels");
    if (r.flow.demand_gbps < 0) throw std::invalid_argument("allocator: negative demand");
    if (r.flow.weight <= 0) throw std::invalid_argument("allocator: non-positive weight");
  }
}

// Demand and link-capacity constraints shared by every policy.
// `capacity` overrides the topology's capacities (residuals for priority
// layering); must have one entry per link.
void add_base_constraints(lp::LinearProgram& prog, const VarMap& vars,
                          const std::vector<FlowRequest>& requests,
                          const std::vector<double>& capacity) {
  for (std::size_t f = 0; f < requests.size(); ++f) {
    std::vector<double> row(prog.num_vars, 0.0);
    for (std::size_t t = 0; t < requests[f].tunnels.size(); ++t) {
      row[vars.at(f, t)] = 1.0;
    }
    prog.add_le(std::move(row), requests[f].flow.demand_gbps);
  }

  std::map<LinkId, std::vector<double>> link_rows;
  for (std::size_t f = 0; f < requests.size(); ++f) {
    for (std::size_t t = 0; t < requests[f].tunnels.size(); ++t) {
      for (const LinkId l : requests[f].tunnels[t].links) {
        auto [it, inserted] =
            link_rows.try_emplace(l, std::vector<double>(prog.num_vars, 0.0));
        it->second[vars.at(f, t)] += 1.0;
      }
    }
  }
  for (auto& [link, row] : link_rows) {
    prog.add_le(std::move(row), capacity[link]);
  }
}

std::vector<double> topo_capacities(const Topology& topo) {
  std::vector<double> caps;
  caps.reserve(topo.link_count());
  for (const Link& l : topo.links()) caps.push_back(l.capacity_gbps);
  return caps;
}

Allocation extract_allocation(const std::vector<FlowRequest>& requests,
                              const VarMap& vars, const lp::Solution& sol) {
  Allocation out;
  if (sol.status != lp::SolveStatus::kOptimal) return out;
  out.feasible = true;
  out.tunnel_rates.resize(requests.size());
  out.flow_rates.assign(requests.size(), 0.0);
  double latency_mass = 0;
  for (std::size_t f = 0; f < requests.size(); ++f) {
    out.tunnel_rates[f].resize(requests[f].tunnels.size(), 0.0);
    for (std::size_t t = 0; t < requests[f].tunnels.size(); ++t) {
      const double rate = std::max(0.0, sol.x[vars.at(f, t)]);
      out.tunnel_rates[f][t] = rate;
      out.flow_rates[f] += rate;
      out.total_throughput_gbps += rate;
      latency_mass += rate * requests[f].tunnels[t].latency_ms;
    }
  }
  if (out.total_throughput_gbps > 0) {
    out.weighted_latency_ms = latency_mass / out.total_throughput_gbps;
  }
  return out;
}

Allocation solve_swan(const std::vector<FlowRequest>& requests,
                      const std::vector<double>& capacity, double epsilon) {
  const VarMap vars = VarMap::build(requests);
  lp::LinearProgram prog(vars.tunnel_vars);
  for (std::size_t f = 0; f < requests.size(); ++f) {
    for (std::size_t t = 0; t < requests[f].tunnels.size(); ++t) {
      // Eq. (2.1): throughput minus epsilon-weighted latency penalty.
      prog.objective[vars.at(f, t)] =
          1.0 - epsilon * requests[f].tunnels[t].latency_ms;
    }
  }
  add_base_constraints(prog, vars, requests, capacity);
  return extract_allocation(requests, vars, lp::solve(prog));
}

Allocation solve_max_min(const std::vector<FlowRequest>& requests,
                         const std::vector<double>& capacity) {
  const VarMap vars = VarMap::build(requests);
  const std::size_t n = requests.size();
  std::vector<double> frozen(n, -1.0);  // -1 = still active

  auto flow_row = [&](std::size_t f, std::size_t num_vars) {
    std::vector<double> row(num_vars, 0.0);
    for (std::size_t t = 0; t < requests[f].tunnels.size(); ++t) {
      row[vars.at(f, t)] = 1.0;
    }
    return row;
  };

  while (std::any_of(frozen.begin(), frozen.end(), [](double v) { return v < 0; })) {
    // Maximize the common share t of all active flows.
    lp::LinearProgram prog(vars.tunnel_vars + 1);
    const std::size_t t_var = vars.tunnel_vars;
    prog.objective[t_var] = 1.0;
    add_base_constraints(prog, vars, requests, capacity);
    for (std::size_t f = 0; f < n; ++f) {
      if (frozen[f] >= 0) {
        prog.add_ge(flow_row(f, prog.num_vars), frozen[f]);
      } else {
        // flow_rate_f - weight_f * t >= 0
        std::vector<double> row = flow_row(f, prog.num_vars);
        row[t_var] = -requests[f].flow.weight;
        prog.add_ge(std::move(row), 0.0);
        // Demand caps the share a flow can claim; without this the common
        // share could exceed a small flow's demand and go infeasible.
        std::vector<double> cap_row(prog.num_vars, 0.0);
        cap_row[t_var] = requests[f].flow.weight;
        prog.add_le(std::move(cap_row),
                    std::max(requests[f].flow.demand_gbps, 0.0));
      }
    }
    const lp::Solution sol = lp::solve(prog);
    if (sol.status != lp::SolveStatus::kOptimal) return Allocation{};
    const double share = sol.objective;

    // Freeze demand-limited flows first (cheap test).
    bool froze = false;
    for (std::size_t f = 0; f < n; ++f) {
      if (frozen[f] >= 0) continue;
      if (requests[f].flow.weight * share >= requests[f].flow.demand_gbps - kEps) {
        frozen[f] = requests[f].flow.demand_gbps;
        froze = true;
      }
    }

    // Bottleneck test: an active flow is frozen at its share when it cannot
    // be pushed above it while everyone else keeps theirs.
    for (std::size_t f = 0; f < n; ++f) {
      if (frozen[f] >= 0) continue;
      lp::LinearProgram probe(vars.tunnel_vars);
      probe.objective = flow_row(f, probe.num_vars);
      add_base_constraints(probe, vars, requests, capacity);
      for (std::size_t g = 0; g < n; ++g) {
        if (g == f) continue;
        const double floor_rate =
            frozen[g] >= 0 ? frozen[g] : requests[g].flow.weight * share;
        probe.add_ge(flow_row(g, probe.num_vars), floor_rate);
      }
      const lp::Solution best = lp::solve(probe);
      if (best.status != lp::SolveStatus::kOptimal) return Allocation{};
      if (best.objective <= requests[f].flow.weight * share + kEps) {
        frozen[f] = requests[f].flow.weight * share;
        froze = true;
      }
    }

    if (!froze) {
      // Degenerate numerical corner: freeze everything at the current share.
      for (std::size_t f = 0; f < n; ++f) {
        if (frozen[f] < 0) frozen[f] = requests[f].flow.weight * share;
      }
    }
  }

  // Final rates: cap each flow at its frozen rate and fill (the fill cannot
  // exceed the caps, so the optimum realizes exactly the max-min vector).
  lp::LinearProgram fin(vars.tunnel_vars);
  for (std::size_t j = 0; j < vars.tunnel_vars; ++j) fin.objective[j] = 1.0;
  add_base_constraints(fin, vars, requests, capacity);
  for (std::size_t f = 0; f < n; ++f) {
    fin.add_le(flow_row(f, fin.num_vars), frozen[f]);
  }
  return extract_allocation(requests, vars, lp::solve(fin));
}

}  // namespace

Allocation max_throughput(const Topology& topo,
                          const std::vector<FlowRequest>& requests) {
  validate(requests);
  return solve_swan(requests, topo_capacities(topo), 0.0);
}

double optimal_throughput(const Topology& topo,
                          const std::vector<FlowRequest>& requests) {
  return max_throughput(topo, requests).total_throughput_gbps;
}

Allocation swan_allocation(const Topology& topo,
                           const std::vector<FlowRequest>& requests,
                           double epsilon) {
  if (epsilon < 0) throw std::invalid_argument("swan_allocation: negative epsilon");
  validate(requests);
  return solve_swan(requests, topo_capacities(topo), epsilon);
}

Allocation max_min_fair(const Topology& topo,
                        const std::vector<FlowRequest>& requests) {
  validate(requests);
  if (requests.empty()) { Allocation empty; empty.feasible = true; return empty; }
  return solve_max_min(requests, topo_capacities(topo));
}

Allocation danna_balanced(const Topology& topo,
                          const std::vector<FlowRequest>& requests,
                          double q_fair) {
  if (q_fair < 0 || q_fair > 1) {
    throw std::invalid_argument("danna_balanced: q_fair outside [0,1]");
  }
  validate(requests);
  if (requests.empty()) { Allocation empty; empty.feasible = true; return empty; }

  const Allocation fair = max_min_fair(topo, requests);
  if (!fair.feasible) return Allocation{};

  const VarMap vars = VarMap::build(requests);
  lp::LinearProgram prog(vars.tunnel_vars);
  for (std::size_t j = 0; j < vars.tunnel_vars; ++j) prog.objective[j] = 1.0;
  add_base_constraints(prog, vars, requests, topo_capacities(topo));
  for (std::size_t f = 0; f < requests.size(); ++f) {
    std::vector<double> row(prog.num_vars, 0.0);
    for (std::size_t t = 0; t < requests[f].tunnels.size(); ++t) {
      row[vars.at(f, t)] = 1.0;
    }
    prog.add_ge(std::move(row), q_fair * fair.flow_rates[f]);
  }
  return extract_allocation(requests, vars, lp::solve(prog));
}

Allocation priority_layered(const Topology& topo,
                            const std::vector<FlowRequest>& requests,
                            const ClassAllocator& base) {
  validate(requests);
  std::vector<int> classes;
  for (const FlowRequest& r : requests) classes.push_back(r.flow.priority);
  std::sort(classes.begin(), classes.end(), std::greater<>());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());

  Allocation combined;
  combined.feasible = true;
  combined.tunnel_rates.resize(requests.size());
  combined.flow_rates.assign(requests.size(), 0.0);

  std::vector<double> residual = topo_capacities(topo);
  double latency_mass = 0;

  for (const int cls : classes) {
    std::vector<FlowRequest> layer;
    std::vector<std::size_t> layer_index;
    for (std::size_t f = 0; f < requests.size(); ++f) {
      if (requests[f].flow.priority == cls) {
        layer.push_back(requests[f]);
        layer_index.push_back(f);
      }
    }

    // Allocate this class against a residual-capacity topology.
    Topology shadow;
    for (std::size_t i = 0; i < topo.node_count(); ++i) {
      shadow.add_node(topo.node(i).name);
    }
    for (std::size_t l = 0; l < topo.link_count(); ++l) {
      const Link& link = topo.link(l);
      shadow.add_link(link.from, link.to, std::max(residual[l], kEps),
                      link.latency_ms);
    }
    const Allocation layer_alloc = base(shadow, layer);
    if (!layer_alloc.feasible) return Allocation{};

    for (std::size_t i = 0; i < layer.size(); ++i) {
      const std::size_t f = layer_index[i];
      combined.tunnel_rates[f] = layer_alloc.tunnel_rates[i];
      combined.flow_rates[f] = layer_alloc.flow_rates[i];
      combined.total_throughput_gbps += layer_alloc.flow_rates[i];
      for (std::size_t t = 0; t < layer[i].tunnels.size(); ++t) {
        const double rate = layer_alloc.tunnel_rates[i][t];
        latency_mass += rate * layer[i].tunnels[t].latency_ms;
        for (const LinkId l : layer[i].tunnels[t].links) {
          residual[l] = std::max(0.0, residual[l] - rate);
        }
      }
    }
  }
  if (combined.total_throughput_gbps > 0) {
    combined.weighted_latency_ms = latency_mass / combined.total_throughput_gbps;
  }
  return combined;
}

}  // namespace compsynth::te
