// Distributed version-space sync: the coordinator/worker path of
// docs/DISTRIBUTED.md must be a pure placement decision. Every test here
// compares GridFinder::save_state() bytes between a plain local sync and a
// sync whose full rebuild went through dist::ShardCoordinator against real
// in-process dist::Worker servers on ephemeral TCP ports — with and without
// injected worker faults (truncated blobs, stalls past the deadline, crashes
// right after an ack, connections dropped mid-response). Fault or no fault,
// worker or no worker, the serialized survivor state must be byte-identical.
//
// Also covered at the unit level: the wire protocol round-trip, transport
// CRC rejection, and the torn-shard-record contract — a `gridfinder 2` shard
// line truncated mid-bitmap is rejected by parse_shard_blob / restore_state
// with a specific error, never silently merged.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "dist/coordinator.h"
#include "dist/wire.h"
#include "dist/worker.h"
#include "obs/metrics.h"
#include "obs/run_context.h"
#include "pref/graph.h"
#include "serve/protocol.h"
#include "sketch/eval.h"
#include "sketch/library.h"
#include "sketch/printer.h"
#include "solver/grid_finder.h"
#include "util/checksum.h"
#include "util/fault.h"
#include "util/rng.h"

namespace compsynth::dist {
namespace {

// A preference graph a ground-truth user would produce: random scenarios in
// the sketch's metric box, pairwise-ranked by the target assignment (the
// idiom of tests/prune_differential_test.cpp).
pref::PreferenceGraph ground_truth_graph(const sketch::Sketch& sk,
                                         const sketch::HoleAssignment& target,
                                         int scenarios, std::uint64_t seed,
                                         double tie_tolerance) {
  util::Rng rng(seed);
  const std::vector<double> target_values = sk.hole_values(target);
  pref::PreferenceGraph graph;
  std::vector<pref::VertexId> ids;
  std::vector<double> scores;
  for (int i = 0; i < scenarios; ++i) {
    pref::Scenario s;
    for (const auto& m : sk.metrics()) {
      s.metrics.push_back(rng.uniform_real(m.lo, m.hi));
    }
    ids.push_back(graph.intern(s));
    scores.push_back(sketch::eval_with_values(sk, target_values, s.metrics));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      if (std::abs(scores[i] - scores[j]) <= tie_tolerance) {
        graph.add_tie(ids[i], ids[j]);
      } else if (scores[i] > scores[j]) {
        graph.add_preference(ids[i], ids[j]);
      } else {
        graph.add_preference(ids[j], ids[i]);
      }
    }
  }
  return graph;
}

sketch::HoleAssignment middle_assignment(const sketch::Sketch& sk) {
  sketch::HoleAssignment a;
  for (const auto& h : sk.holes()) a.index.push_back(h.count / 2);
  return a;
}

solver::GridFinderConfig base_config() {
  solver::GridFinderConfig c;
  c.threads = 1;  // determinism is free either way; keep the test lean
  return c;
}

// The single-process reference: plain local kBatch sync.
std::string local_state(const sketch::Sketch& sk,
                        const pref::PreferenceGraph& graph,
                        std::size_t* n_shards = nullptr) {
  solver::GridFinder finder(sk, base_config());
  finder.sync(graph);
  if (n_shards != nullptr) *n_shards = finder.shard_ranges().size();
  return finder.save_state();
}

struct DistOutcome {
  std::string state;
  long shards_completed = 0;
  long fallbacks = 0;
  long reissues = 0;
  long worker_failures = 0;
};

// One distributed sync: spin up a dist::Worker per fault plan on tcp:0,
// point a ShardCoordinator at them, and run a GridFinder sync through it.
DistOutcome dist_state(
    const sketch::Sketch& sk, const pref::PreferenceGraph& graph,
    const std::vector<util::FaultPlan>& worker_faults,
    const std::function<void(CoordinatorConfig&)>& tweak = {}) {
  obs::MetricsRegistry metrics;
  obs::RunContext obs;
  obs.metrics = &metrics;

  std::vector<std::unique_ptr<Worker>> workers;
  CoordinatorConfig cc;
  for (const util::FaultPlan& plan : worker_faults) {
    WorkerConfig wc;
    wc.listen = "tcp:0";
    wc.faults = plan;
    workers.push_back(std::make_unique<Worker>(wc));
    workers.back()->start();
    cc.workers.push_back(workers.back()->endpoint());
  }
  cc.sketch_text = sketch::print_sketch(sk);
  cc.tie_tolerance = base_config().base.tie_tolerance;
  cc.connect_retry.initial_backoff_s = 0;  // tests never benefit from sleeping
  cc.obs = obs;
  if (tweak) tweak(cc);
  ShardCoordinator coordinator(std::move(cc));

  solver::GridFinderConfig fc = base_config();
  fc.shard_backend = &coordinator;
  solver::GridFinder finder(sk, fc);
  finder.sync(graph);

  for (auto& w : workers) {
    w->stop();
    w->wait();
  }

  DistOutcome out;
  out.state = finder.save_state();
  out.shards_completed = metrics.counter("dist.shards_completed").value();
  out.fallbacks = metrics.counter("dist.fallbacks").value();
  out.reissues = metrics.counter("dist.reissues").value();
  out.worker_failures = metrics.counter("dist.worker_failures").value();
  return out;
}

util::FaultPlan clean_worker() { return {}; }

// ---------------------------------------------------------------------------
// Differential: distributed == local, byte for byte, across all three
// evaluation sketches, with 2 healthy workers.
// ---------------------------------------------------------------------------

void expect_distributed_equals_local(const sketch::Sketch& sk,
                                     std::uint64_t seed) {
  const pref::PreferenceGraph graph = ground_truth_graph(
      sk, middle_assignment(sk), 6, seed, base_config().base.tie_tolerance);
  std::size_t n_shards = 0;
  const std::string local = local_state(sk, graph, &n_shards);

  const DistOutcome dist =
      dist_state(sk, graph, {clean_worker(), clean_worker()});
  EXPECT_EQ(dist.state, local);
  // The comparison must not pass vacuously through the local fallback: every
  // shard has to have come over the wire.
  EXPECT_EQ(dist.fallbacks, 0);
  EXPECT_EQ(dist.shards_completed, static_cast<long>(n_shards));
}

TEST(DistDifferential, SwanMatchesLocal) {
  expect_distributed_equals_local(sketch::swan_sketch(), 11);
}

TEST(DistDifferential, AbrQoeMatchesLocal) {
  expect_distributed_equals_local(sketch::abr_qoe_sketch(), 12);
}

TEST(DistDifferential, HomenetMatchesLocal) {
  expect_distributed_equals_local(sketch::homenet_sketch(), 13);
}

// ---------------------------------------------------------------------------
// Differential under injected worker faults: one worker misbehaves
// deterministically (p = 1), its healthy peer carries the sync, and the
// merged state is still byte-identical — the faulty worker is detected,
// struck out and its shards re-dispatched.
// ---------------------------------------------------------------------------

void expect_survives_fault(const sketch::Sketch& sk,
                           const util::FaultPlan& bad_plan,
                           std::uint64_t seed,
                           const std::function<void(CoordinatorConfig&)>&
                               tweak = {}) {
  const pref::PreferenceGraph graph = ground_truth_graph(
      sk, middle_assignment(sk), 6, seed, base_config().base.tie_tolerance);
  const std::string local = local_state(sk, graph);

  const DistOutcome dist =
      dist_state(sk, graph, {bad_plan, clean_worker()}, tweak);
  EXPECT_EQ(dist.state, local);
  EXPECT_EQ(dist.fallbacks, 0) << "fault should be absorbed, not punted";
  EXPECT_GE(dist.worker_failures, 1);
}

TEST(DistFaults, TruncatedBlobIsRejectedAndRedispatched) {
  util::FaultPlan bad;
  bad.worker_truncate_p = 1.0;  // every blob torn mid-bitmap, CRC "valid"
  expect_survives_fault(sketch::swan_sketch(), bad, 21);
}

TEST(DistFaults, DroppedConnectionMidBlob) {
  util::FaultPlan bad;
  bad.worker_drop_p = 1.0;  // half the response bytes, then hang up
  expect_survives_fault(sketch::swan_sketch(), bad, 22);
}

TEST(DistFaults, StallPastDeadlineTimesOutAndRetires) {
  util::FaultPlan bad;
  bad.worker_stall_p = 1.0;
  bad.worker_stall_s = 0.6;  // far past the test deadline below
  expect_survives_fault(sketch::swan_sketch(), bad, 23,
                        [](CoordinatorConfig& cc) {
                          cc.shard_deadline_s = 0.15;
                          cc.min_straggler_s = 0.1;
                        });
}

TEST(DistFaults, CrashAfterAckIsDetectedByLaterDispatch) {
  util::FaultPlan bad;
  bad.worker_crash_after_ack_p = 1.0;  // one good answer, then the worker dies
  // Swan has ~14 shards, so the crashed worker's absence is always noticed.
  expect_survives_fault(sketch::swan_sketch(), bad, 24);
}

TEST(DistFaults, TruncateOnAbrQoe) {
  util::FaultPlan bad;
  bad.worker_truncate_p = 1.0;
  expect_survives_fault(sketch::abr_qoe_sketch(), bad, 25);
}

TEST(DistFaults, CrashAfterAckOnHomenet) {
  // Homenet is a single shard: the crash-after-ack worker either answers it
  // (valid response wins before the crash lands) or its peer does.
  util::FaultPlan bad;
  bad.worker_crash_after_ack_p = 1.0;
  const sketch::Sketch& sk = sketch::homenet_sketch();
  const pref::PreferenceGraph graph = ground_truth_graph(
      sk, middle_assignment(sk), 6, 26, base_config().base.tie_tolerance);
  const std::string local = local_state(sk, graph);
  const DistOutcome dist = dist_state(sk, graph, {bad, clean_worker()});
  EXPECT_EQ(dist.state, local);
  EXPECT_EQ(dist.fallbacks, 0);
}

// ---------------------------------------------------------------------------
// Graceful local fallback: no workers, dead workers, or workers so broken
// every attempt fails. The sync must still complete with the identical
// result — distribution can never change *whether* the answer appears.
// ---------------------------------------------------------------------------

TEST(DistFallback, NoWorkersConfiguredFallsBackLocally) {
  const sketch::Sketch& sk = sketch::homenet_sketch();
  const pref::PreferenceGraph graph = ground_truth_graph(
      sk, middle_assignment(sk), 6, 31, base_config().base.tie_tolerance);
  const std::string local = local_state(sk, graph);

  const DistOutcome dist = dist_state(sk, graph, /*worker_faults=*/{});
  EXPECT_EQ(dist.state, local);
  EXPECT_EQ(dist.fallbacks, 1);
  EXPECT_EQ(dist.shards_completed, 0);
}

TEST(DistFallback, AllWorkersDeadFallsBackLocally) {
  const sketch::Sketch& sk = sketch::homenet_sketch();
  const pref::PreferenceGraph graph = ground_truth_graph(
      sk, middle_assignment(sk), 6, 32, base_config().base.tie_tolerance);
  const std::string local = local_state(sk, graph);

  // Bind a real worker to learn a port, then kill it so the endpoint points
  // at nothing. One connect attempt, no backoff: fail fast into fallback.
  std::string dead_endpoint;
  {
    WorkerConfig wc;
    wc.listen = "tcp:0";
    Worker w(wc);
    w.start();
    dead_endpoint = w.endpoint();
    w.stop();
    w.wait();
  }

  obs::MetricsRegistry metrics;
  obs::RunContext obs;
  obs.metrics = &metrics;
  CoordinatorConfig cc;
  cc.workers = {dead_endpoint};
  cc.sketch_text = sketch::print_sketch(sk);
  cc.connect_retry.max_attempts = 1;
  cc.connect_retry.initial_backoff_s = 0;
  cc.obs = obs;
  ShardCoordinator coordinator(std::move(cc));

  solver::GridFinderConfig fc = base_config();
  fc.shard_backend = &coordinator;
  solver::GridFinder finder(sk, fc);
  finder.sync(graph);

  EXPECT_EQ(finder.save_state(), local);
  EXPECT_EQ(metrics.counter("dist.fallbacks").value(), 1);
}

TEST(DistFallback, EveryWorkerFaultyFallsBackLocally) {
  // Both workers tear every blob: every attempt fails structurally, the
  // attempt budget empties, and the finder must complete locally anyway.
  util::FaultPlan bad;
  bad.worker_truncate_p = 1.0;
  const sketch::Sketch& sk = sketch::homenet_sketch();
  const pref::PreferenceGraph graph = ground_truth_graph(
      sk, middle_assignment(sk), 6, 33, base_config().base.tie_tolerance);
  const std::string local = local_state(sk, graph);

  const DistOutcome dist = dist_state(sk, graph, {bad, bad});
  EXPECT_EQ(dist.state, local);
  EXPECT_EQ(dist.fallbacks, 1);
  EXPECT_GE(dist.worker_failures, 1);
}

// ---------------------------------------------------------------------------
// Torn shard records are rejected with a specific error at every layer.
// ---------------------------------------------------------------------------

using solver::GridFinder;

TEST(TornBlob, ParseRoundTrip) {
  const std::string record =
      GridFinder::encode_shard_blob(3, 64, 128, {64, 71, 100, 127});
  const GridFinder::ParsedShardBlob parsed =
      GridFinder::parse_shard_blob(record);
  EXPECT_EQ(parsed.index, 3u);
  EXPECT_EQ(parsed.lo, 64);
  EXPECT_EQ(parsed.hi, 128);
  EXPECT_EQ(parsed.linears, (std::vector<std::int64_t>{64, 71, 100, 127}));
}

TEST(TornBlob, TruncatedMidBitmapIsRejected) {
  const std::string record =
      GridFinder::encode_shard_blob(0, 0, 4096, {1, 5, 9, 4000});
  // Cut the record mid-bitmap — the classic torn write / torn response.
  const std::string torn = record.substr(0, record.size() - 7);
  try {
    GridFinder::parse_shard_blob(torn);
    FAIL() << "torn shard record must not parse";
  } catch (const std::invalid_argument& ex) {
    EXPECT_NE(std::string(ex.what()).find("shard record"), std::string::npos)
        << ex.what();
  }
}

TEST(TornBlob, TruncatedHeaderIsRejected) {
  EXPECT_THROW(GridFinder::parse_shard_blob("shard 0 0"),
               std::invalid_argument);
  EXPECT_THROW(GridFinder::parse_shard_blob(""), std::invalid_argument);
}

TEST(TornBlob, CountMismatchIsRejected) {
  std::string record = GridFinder::encode_shard_blob(0, 0, 64, {1, 5, 9});
  // Flip the count field (third survivor claimed as fourth).
  const std::size_t pos = record.find(" 3 ");
  ASSERT_NE(pos, std::string::npos);
  record.replace(pos, 3, " 4 ");
  EXPECT_THROW(GridFinder::parse_shard_blob(record), std::invalid_argument);
}

TEST(TornBlob, NonHexBytesAreRejected) {
  std::string record = GridFinder::encode_shard_blob(0, 0, 64, {1, 5, 9});
  record.back() = 'z';
  EXPECT_THROW(GridFinder::parse_shard_blob(record), std::invalid_argument);
}

TEST(TornBlob, RestoreStateRejectsTornShardLine) {
  const sketch::Sketch& sk = sketch::homenet_sketch();
  const pref::PreferenceGraph graph = ground_truth_graph(
      sk, middle_assignment(sk), 5, 41, base_config().base.tie_tolerance);
  solver::GridFinder finder(sk, base_config());
  finder.sync(graph);
  const std::string state = finder.save_state();

  // Damage the first shard line: drop a few trailing bitmap characters.
  const std::size_t shard_at = state.find("\nshard ");
  ASSERT_NE(shard_at, std::string::npos) << "v2 state must carry shard lines";
  const std::size_t eol = state.find('\n', shard_at + 1);
  ASSERT_NE(eol, std::string::npos);
  std::string damaged = state;
  damaged.erase(eol - 4, 4);

  solver::GridFinder fresh(sk, base_config());
  try {
    fresh.restore_state(damaged);
    FAIL() << "torn shard line must not restore";
  } catch (const std::invalid_argument& ex) {
    EXPECT_NE(std::string(ex.what()).find("shard record"), std::string::npos)
        << ex.what();
  }
}

// ---------------------------------------------------------------------------
// Wire protocol units: request round-trip and transport CRC rejection.
// ---------------------------------------------------------------------------

TEST(Wire, ShardRequestRoundTrip) {
  ShardRequest req;
  req.job = "sync-7";
  req.shard = 4;
  req.lo = 16384;
  req.hi = 20480;
  req.tie = 1e-4;
  req.sketch = "sketch s(x in [0, 1]) {\n  x\n}";
  req.graph = "prefgraph 1\nvertices 0\nedges 0\nties 0\n";

  const std::string line = render_shard_request(req);
  const auto parsed = parse_wire_request(line);
  ASSERT_TRUE(std::holds_alternative<WireRequest>(parsed));
  const WireRequest& wire = std::get<WireRequest>(parsed);
  EXPECT_EQ(wire.verb, WireVerb::kShard);
  EXPECT_EQ(wire.shard.job, req.job);
  EXPECT_EQ(wire.shard.shard, req.shard);
  EXPECT_EQ(wire.shard.lo, req.lo);
  EXPECT_EQ(wire.shard.hi, req.hi);
  EXPECT_EQ(wire.shard.tie, req.tie);
  EXPECT_EQ(wire.shard.sketch, req.sketch);
  EXPECT_EQ(wire.shard.graph, req.graph);
}

TEST(Wire, SimpleVerbsRoundTrip) {
  for (const WireVerb verb :
       {WireVerb::kHello, WireVerb::kPing, WireVerb::kShutdown}) {
    const auto parsed = parse_wire_request(render_simple_request(verb));
    ASSERT_TRUE(std::holds_alternative<WireRequest>(parsed));
    EXPECT_EQ(std::get<WireRequest>(parsed).verb, verb);
  }
}

TEST(Wire, GarbageRequestYieldsErrorResponse) {
  const auto parsed = parse_wire_request("not json at all");
  ASSERT_TRUE(std::holds_alternative<serve::ParseError>(parsed));
}

std::string shard_response_line(const std::string& blob,
                                const std::string& crc) {
  serve::JsonWriter w;
  w.integer("v", kWireVersion)
      .boolean("ok", true)
      .str("verb", "shard")
      .str("job", "sync-1")
      .integer("shard", 0)
      .integer("lo", 0)
      .integer("hi", 64)
      .integer("count", 3)
      .str("crc", crc)
      .str("blob", blob)
      .num("secs", 0.01);
  return w.done();
}

TEST(Wire, ShardResponseAcceptsMatchingCrc) {
  const std::string blob = GridFinder::encode_shard_blob(0, 0, 64, {1, 5, 9});
  std::string why;
  const std::optional<ShardResponse> resp = parse_shard_response(
      shard_response_line(blob, util::crc32_hex(util::crc32(blob))), &why);
  ASSERT_TRUE(resp.has_value()) << why;
  EXPECT_TRUE(resp->ok);
  EXPECT_EQ(resp->blob, blob);
  EXPECT_EQ(resp->count, 3);
}

TEST(Wire, ShardResponseRejectsCrcMismatch) {
  const std::string blob = GridFinder::encode_shard_blob(0, 0, 64, {1, 5, 9});
  std::string why;
  const std::optional<ShardResponse> resp =
      parse_shard_response(shard_response_line(blob, "deadbeef"), &why);
  EXPECT_FALSE(resp.has_value());
  EXPECT_NE(why.find("CRC"), std::string::npos) << why;
}

}  // namespace
}  // namespace compsynth::dist
