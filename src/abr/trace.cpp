#include "abr/trace.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace compsynth::abr {

Trace::Trace(std::vector<double> bandwidth_mbps, double segment_seconds)
    : bandwidth_mbps_(std::move(bandwidth_mbps)), segment_seconds_(segment_seconds) {
  if (bandwidth_mbps_.empty()) throw std::invalid_argument("Trace: empty trace");
  if (segment_seconds_ <= 0) throw std::invalid_argument("Trace: non-positive segment");
  for (const double b : bandwidth_mbps_) {
    if (b <= 0) throw std::invalid_argument("Trace: non-positive bandwidth sample");
  }
}

double Trace::bandwidth_at(double t_seconds) const {
  if (t_seconds < 0) t_seconds = 0;
  const auto idx = static_cast<std::size_t>(t_seconds / segment_seconds_);
  return bandwidth_mbps_[std::min(idx, bandwidth_mbps_.size() - 1)];
}

double Trace::download_seconds(double megabits, double start_seconds) const {
  if (megabits <= 0) return 0;
  double remaining = megabits;
  double t = std::max(0.0, start_seconds);
  // Walk segment by segment; the final segment extends to infinity.
  for (;;) {
    const double bw = bandwidth_at(t);
    const auto idx = static_cast<std::size_t>(t / segment_seconds_);
    if (idx >= bandwidth_mbps_.size() - 1) {
      return (t - start_seconds) + remaining / bw;
    }
    const double segment_end = static_cast<double>(idx + 1) * segment_seconds_;
    const double window = segment_end - t;
    const double can_fetch = bw * window;
    if (can_fetch >= remaining) {
      return (t - start_seconds) + remaining / bw;
    }
    remaining -= can_fetch;
    t = segment_end;
  }
}

double Trace::mean_mbps() const {
  return std::accumulate(bandwidth_mbps_.begin(), bandwidth_mbps_.end(), 0.0) /
         static_cast<double>(bandwidth_mbps_.size());
}

Trace constant_trace(double mbps, double duration_seconds) {
  const auto n = static_cast<std::size_t>(std::max(1.0, duration_seconds));
  return Trace(std::vector<double>(n, mbps), 1.0);
}

Trace square_trace(double high_mbps, double low_mbps, double period_seconds,
                   double duration_seconds) {
  if (period_seconds <= 0) throw std::invalid_argument("square_trace: bad period");
  std::vector<double> samples;
  const auto n = static_cast<std::size_t>(std::max(1.0, duration_seconds));
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool high =
        std::fmod(static_cast<double>(i), 2 * period_seconds) < period_seconds;
    samples.push_back(high ? high_mbps : low_mbps);
  }
  return Trace(std::move(samples), 1.0);
}

Trace random_walk_trace(util::Rng& rng, double start_mbps, double floor_mbps,
                        double cap_mbps, double duration_seconds,
                        double volatility) {
  if (floor_mbps <= 0 || cap_mbps < floor_mbps) {
    throw std::invalid_argument("random_walk_trace: bad bounds");
  }
  std::vector<double> samples;
  const auto n = static_cast<std::size_t>(std::max(1.0, duration_seconds));
  samples.reserve(n);
  double bw = std::clamp(start_mbps, floor_mbps, cap_mbps);
  for (std::size_t i = 0; i < n; ++i) {
    samples.push_back(bw);
    bw *= std::exp(rng.gaussian(0.0, volatility) - volatility * volatility / 2);
    bw = std::clamp(bw, floor_mbps, cap_mbps);
  }
  return Trace(std::move(samples), 1.0);
}

}  // namespace compsynth::abr
