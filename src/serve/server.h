// The daemon's network face: accepts line-delimited JSON protocol
// connections on a Unix or TCP socket and dispatches each request line to a
// SessionHost (docs/SERVICE.md documents the protocol; session_host.h the
// semantics behind it).
//
// Threading: one accept thread plus one thread per connection. Connection
// threads do only parsing, dispatch and I/O — all synthesis work runs on
// the host's advance pool — so a connection blocked in a `next` wait costs
// one mostly-idle thread, and the architect count a daemon can serve is
// bounded by sessions on disk, not threads.
//
// Every request is measured: serve.requests / serve.errors counters, a
// per-verb serve.latency.<verb>.seconds histogram and a "serve_request"
// trace event (schema rev 1.4, docs/OBSERVABILITY.md).
#pragma once

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/run_context.h"
#include "serve/session_host.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace compsynth::serve {

struct ServerConfig {
  /// "unix:<path>" or "tcp:<port>" / "tcp:<host>:<port>" (numeric IPv4
  /// host; default 127.0.0.1). TCP port 0 binds an ephemeral port —
  /// endpoint() reports the one chosen.
  std::string listen;
  int backlog = 64;
  /// Daemon-level observability (typically run id "serve").
  obs::RunContext obs;
};

class Server {
 public:
  /// Binds immediately; throws std::runtime_error on a bad endpoint or bind
  /// failure. `host` must outlive the server.
  Server(ServerConfig config, SessionHost& host);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Starts the accept thread.
  void start();

  /// The bound endpoint in listen syntax (resolves TCP port 0).
  std::string endpoint() const;

  /// Blocks until a shutdown request or stop(), then joins every thread and
  /// drains the host.
  void wait();

  /// Initiates shutdown from outside the protocol (signal handlers, tests).
  void stop();

 private:
  void accept_loop() EXCLUDES(mu_);
  void connection_loop(int fd) EXCLUDES(mu_);
  std::string handle_line(const std::string& line, bool* stop_after);
  void begin_stop() EXCLUDES(mu_);

  ServerConfig config_;
  SessionHost& host_;
  // Set in the constructor, read-only afterwards (the accept thread and the
  // destructor both touch listen_fd_, ordered by start()/join()).
  int listen_fd_ = -1;
  bool unix_socket_ = false;
  std::string unix_path_;
  std::string endpoint_;

  util::Mutex mu_;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::set<int> conn_fds_ GUARDED_BY(mu_);
  std::vector<std::thread> conn_threads_ GUARDED_BY(mu_);
  // Joined by wait(); started once by start(). Never detached.
  std::thread accept_thread_;
};

}  // namespace compsynth::serve
