
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pref/graph.cpp" "src/pref/CMakeFiles/compsynth_pref.dir/graph.cpp.o" "gcc" "src/pref/CMakeFiles/compsynth_pref.dir/graph.cpp.o.d"
  "/root/repo/src/pref/scenario.cpp" "src/pref/CMakeFiles/compsynth_pref.dir/scenario.cpp.o" "gcc" "src/pref/CMakeFiles/compsynth_pref.dir/scenario.cpp.o.d"
  "/root/repo/src/pref/serialize.cpp" "src/pref/CMakeFiles/compsynth_pref.dir/serialize.cpp.o" "gcc" "src/pref/CMakeFiles/compsynth_pref.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sketch/CMakeFiles/compsynth_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/compsynth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
