// Internal batch-evaluation kernel shared by the scalar and AVX2 lane
// back-ends of sketch::BatchTape (see compile.h for the public API and
// docs/EVALUATOR.md for the full specification).
//
// A BatchProgram is a *structured* tape: unlike CompiledSketch's jump-guarded
// tape, control flow is expressed as paired region markers
// (kIteBegin/kIteElse/kIteEnd, kChoiceBegin/.../kChoiceEnd) executed under a
// per-lane activity mask. Every lane runs every instruction; masks decide
// which lanes an instruction is *semantically* executing for:
//
//   * Values are W-lane vectors (W = kBatchLaneWidth, fixed at 8 on every
//     back-end so batch shapes are ISA-independent).
//   * Division by zero and kRaise poison only the lanes that are active at
//     that instruction and have no earlier error (first error wins per
//     lane), reproducing the scalar interpreter's reachable-only EvalError
//     semantics. Inactive lanes may compute inf/NaN garbage — IEEE double
//     arithmetic never traps, and blends discard those values.
//   * For any lane, the subsequence of instructions where it is active is
//     exactly the scalar execution order of the path that lane takes, so
//     first-poison-in-tape-order equals first-error-on-path.
//
// The interpreter is templated on a lane policy `L` providing the vector and
// mask types plus elementwise operations with *bit-exact* scalar semantics
// (std::min/std::max NaN and signed-zero asymmetry included). ScalarLanes
// below is the portable fallback; Avx2Lanes lives in batch_avx2.cpp, the
// only TU compiled with -mavx2.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sketch/compile.h"

namespace compsynth::sketch::internal {

/// One structured-tape instruction. Booleans are 1.0 / 0.0 values, exactly
/// as on the scalar tape.
struct BatchInstr {
  enum class Op : std::uint8_t {
    kPushConst,   // push broadcast(value)
    kPushMetric,  // push broadcast(metrics[a])
    kPushHole,    // push lanes holes[a*W .. a*W+W)
    kNeg,
    kAdd, kSub, kMul,
    kDiv,         // poisons active lanes whose divisor is 0.0
    kMin, kMax,   // std::min / std::max semantics per lane
    kLt, kLe, kGt, kGe, kEq, kNe,  // push 1.0 / 0.0 per lane
    kAnd, kOr,    // both operands already evaluated (no short-circuit)
    kNot,
    kIteBegin,    // pop cond; push frame; active &= truthy(cond)
    kIteElse,     // active = frame.saved & ~cond
    kIteEnd,      // pop else+then values, blend by cond; restore active
    kChoiceBegin, // a = selector hole id, b = alternative count; computes
                  // per-lane clamp(llround(holes[a])) selectors
    kChoiceArm,   // a = arm index; active = frame.saved & (sel == a)
    kChoiceAccum, // pop arm value, blend into the accumulator below it
    kChoiceEnd,   // restore active, pop frame
    kRaise,       // a = 0 numeric-position, 1 bool-position; poisons active
                  // lanes and pushes a 0.0 placeholder slot
  };

  Op op;
  std::int32_t a = 0;  // metric/hole id, arm index, or message id
  std::int32_t b = 0;  // kChoiceBegin: alternative count
  double value = 0;    // kPushConst payload
};

/// A lowered batch program plus the exact stack / mask-frame bounds the
/// interpreter preallocates.
struct BatchProgram {
  std::vector<BatchInstr> code;
  std::size_t metric_count = 0;
  std::size_t hole_count = 0;
  std::size_t max_stack = 0;   // value-stack slots (W-lane vectors)
  std::size_t max_frames = 0;  // mask-frame nesting bound
};

// Stacks this deep live on the C++ stack; deeper (pathological fuzzer)
// programs fall back to one heap allocation per eval_lanes call.
inline constexpr std::size_t kInlineBatchStack = 64;
inline constexpr std::size_t kInlineBatchFrames = 16;

/// Records `code` on every lane named in `bits` that has no earlier error:
/// first error wins per lane, matching the scalar interpreter aborting at
/// its first EvalError.
inline void poison(LaneError* err, unsigned bits, LaneError code) {
  for (std::size_t i = 0; i < kBatchLaneWidth; ++i) {
    if (((bits >> i) & 1u) != 0 && err[i] == LaneError::kNone) err[i] = code;
  }
}

/// Portable lane policy: plain arrays, every operation an elementwise loop
/// written to match the scalar interpreter expression-for-expression.
struct ScalarLanes {
  static constexpr std::size_t kW = kBatchLaneWidth;
  struct Vec { double v[kW]; };
  struct Mask { std::uint64_t m[kW]; };  // per lane: all-ones or all-zeros

  static Vec broadcast(double x) {
    Vec r;
    for (std::size_t i = 0; i < kW; ++i) r.v[i] = x;
    return r;
  }
  static Vec load(const double* p) {
    Vec r;
    for (std::size_t i = 0; i < kW; ++i) r.v[i] = p[i];
    return r;
  }
  static void store(double* p, Vec a) {
    for (std::size_t i = 0; i < kW; ++i) p[i] = a.v[i];
  }
  static Vec neg(Vec a) {
    Vec r;
    for (std::size_t i = 0; i < kW; ++i) r.v[i] = -a.v[i];
    return r;
  }
  static Vec add(Vec a, Vec b) {
    Vec r;
    for (std::size_t i = 0; i < kW; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  static Vec sub(Vec a, Vec b) {
    Vec r;
    for (std::size_t i = 0; i < kW; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
  }
  static Vec mul(Vec a, Vec b) {
    Vec r;
    for (std::size_t i = 0; i < kW; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
  static Vec div(Vec a, Vec b) {
    Vec r;
    for (std::size_t i = 0; i < kW; ++i) r.v[i] = a.v[i] / b.v[i];
    return r;
  }
  static Vec min(Vec a, Vec b) {
    Vec r;
    for (std::size_t i = 0; i < kW; ++i) r.v[i] = std::min(a.v[i], b.v[i]);
    return r;
  }
  static Vec max(Vec a, Vec b) {
    Vec r;
    for (std::size_t i = 0; i < kW; ++i) r.v[i] = std::max(a.v[i], b.v[i]);
    return r;
  }
  static Vec cmp_lt(Vec a, Vec b) {
    Vec r;
    for (std::size_t i = 0; i < kW; ++i) r.v[i] = a.v[i] < b.v[i] ? 1.0 : 0.0;
    return r;
  }
  static Vec cmp_le(Vec a, Vec b) {
    Vec r;
    for (std::size_t i = 0; i < kW; ++i) r.v[i] = a.v[i] <= b.v[i] ? 1.0 : 0.0;
    return r;
  }
  static Vec cmp_gt(Vec a, Vec b) {
    Vec r;
    for (std::size_t i = 0; i < kW; ++i) r.v[i] = a.v[i] > b.v[i] ? 1.0 : 0.0;
    return r;
  }
  static Vec cmp_ge(Vec a, Vec b) {
    Vec r;
    for (std::size_t i = 0; i < kW; ++i) r.v[i] = a.v[i] >= b.v[i] ? 1.0 : 0.0;
    return r;
  }
  static Vec cmp_eq(Vec a, Vec b) {
    Vec r;
    for (std::size_t i = 0; i < kW; ++i) r.v[i] = a.v[i] == b.v[i] ? 1.0 : 0.0;
    return r;
  }
  static Vec cmp_ne(Vec a, Vec b) {
    Vec r;
    for (std::size_t i = 0; i < kW; ++i) r.v[i] = a.v[i] != b.v[i] ? 1.0 : 0.0;
    return r;
  }
  static Vec logical_and(Vec a, Vec b) {
    Vec r;
    for (std::size_t i = 0; i < kW; ++i)
      r.v[i] = (a.v[i] != 0 && b.v[i] != 0) ? 1.0 : 0.0;
    return r;
  }
  static Vec logical_or(Vec a, Vec b) {
    Vec r;
    for (std::size_t i = 0; i < kW; ++i)
      r.v[i] = (a.v[i] != 0 || b.v[i] != 0) ? 1.0 : 0.0;
    return r;
  }
  static Vec logical_not(Vec a) {
    Vec r;
    for (std::size_t i = 0; i < kW; ++i) r.v[i] = a.v[i] == 0 ? 1.0 : 0.0;
    return r;
  }
  static Mask truthy(Vec a) {  // NaN != 0 is true, as in the interpreter
    Mask r;
    for (std::size_t i = 0; i < kW; ++i)
      r.m[i] = a.v[i] != 0 ? ~std::uint64_t{0} : 0;
    return r;
  }
  static Mask is_zero(Vec a) {  // -0.0 == 0.0 holds, NaN == 0.0 does not
    Mask r;
    for (std::size_t i = 0; i < kW; ++i)
      r.m[i] = a.v[i] == 0 ? ~std::uint64_t{0} : 0;
    return r;
  }
  static Mask mask_all() {
    Mask r;
    for (std::size_t i = 0; i < kW; ++i) r.m[i] = ~std::uint64_t{0};
    return r;
  }
  static Mask mask_and(Mask a, Mask b) {
    Mask r;
    for (std::size_t i = 0; i < kW; ++i) r.m[i] = a.m[i] & b.m[i];
    return r;
  }
  static Mask mask_andnot(Mask a, Mask b) {  // ~a & b
    Mask r;
    for (std::size_t i = 0; i < kW; ++i) r.m[i] = ~a.m[i] & b.m[i];
    return r;
  }
  static Mask from_bits(unsigned bits) {
    Mask r;
    for (std::size_t i = 0; i < kW; ++i)
      r.m[i] = ((bits >> i) & 1u) != 0 ? ~std::uint64_t{0} : 0;
    return r;
  }
  static unsigned bits(Mask a) {
    unsigned r = 0;
    for (std::size_t i = 0; i < kW; ++i)
      if (a.m[i] != 0) r |= 1u << i;
    return r;
  }
  static Vec blend(Vec a, Vec b, Mask m) {  // per lane: m ? b : a
    Vec r;
    for (std::size_t i = 0; i < kW; ++i) r.v[i] = m.m[i] != 0 ? b.v[i] : a.v[i];
    return r;
  }
  static Mask gt(Vec a, Vec b) {  // false on NaN, like operator>
    Mask r;
    for (std::size_t i = 0; i < kW; ++i)
      r.m[i] = a.v[i] > b.v[i] ? ~std::uint64_t{0} : 0;
    return r;
  }
  static Mask abs_diff_gt(Vec a, Vec b, double bound) {
    // |a - b| > bound per lane; false on NaN, like std::abs(x) > bound.
    Mask r;
    for (std::size_t i = 0; i < kW; ++i)
      r.m[i] = std::abs(a.v[i] - b.v[i]) > bound ? ~std::uint64_t{0} : 0;
    return r;
  }
};

template <class L>
struct BatchFrame {
  typename L::Mask saved;              // activity on region entry
  typename L::Mask sub;                // ite cond mask / current arm mask
  std::int32_t sel[kBatchLaneWidth];   // kChoice: clamped per-lane selectors
};

/// Executes `p` over one scenario and W candidates. `holes` is the SoA
/// candidate block (hole_count x W doubles), `out` and `err` receive W
/// results and per-lane error codes. A lane's `out` value is meaningful
/// only when its `err` is LaneError::kNone.
template <class L>
void run_batch(const BatchProgram& p, const double* metrics,
               const double* holes, double* out, LaneError* err) {
  using Op = BatchInstr::Op;
  using Vec = typename L::Vec;
  using Mask = typename L::Mask;
  constexpr std::size_t kW = kBatchLaneWidth;

  Vec stack_inline[kInlineBatchStack];
  std::vector<Vec> stack_heap;
  Vec* stack = stack_inline;
  if (p.max_stack > kInlineBatchStack) {
    stack_heap.resize(p.max_stack);
    stack = stack_heap.data();
  }
  BatchFrame<L> frames_inline[kInlineBatchFrames];
  std::vector<BatchFrame<L>> frames_heap;
  BatchFrame<L>* frames = frames_inline;
  if (p.max_frames > kInlineBatchFrames) {
    frames_heap.resize(p.max_frames);
    frames = frames_heap.data();
  }

  for (std::size_t i = 0; i < kW; ++i) err[i] = LaneError::kNone;
  Mask active = L::mask_all();
  std::size_t sp = 0;
  std::size_t fp = 0;

  for (const BatchInstr& in : p.code) {
    switch (in.op) {
      case Op::kPushConst:
        stack[sp++] = L::broadcast(in.value);
        break;
      case Op::kPushMetric:
        stack[sp++] = L::broadcast(metrics[static_cast<std::size_t>(in.a)]);
        break;
      case Op::kPushHole:
        stack[sp++] = L::load(holes + static_cast<std::size_t>(in.a) * kW);
        break;
      case Op::kNeg:
        stack[sp - 1] = L::neg(stack[sp - 1]);
        break;
      case Op::kAdd:
        --sp;
        stack[sp - 1] = L::add(stack[sp - 1], stack[sp]);
        break;
      case Op::kSub:
        --sp;
        stack[sp - 1] = L::sub(stack[sp - 1], stack[sp]);
        break;
      case Op::kMul:
        --sp;
        stack[sp - 1] = L::mul(stack[sp - 1], stack[sp]);
        break;
      case Op::kDiv: {
        --sp;
        const unsigned bad = L::bits(L::mask_and(L::is_zero(stack[sp]), active));
        if (bad != 0) poison(err, bad, LaneError::kDivZero);
        stack[sp - 1] = L::div(stack[sp - 1], stack[sp]);
        break;
      }
      case Op::kMin:
        --sp;
        stack[sp - 1] = L::min(stack[sp - 1], stack[sp]);
        break;
      case Op::kMax:
        --sp;
        stack[sp - 1] = L::max(stack[sp - 1], stack[sp]);
        break;
      case Op::kLt:
        --sp;
        stack[sp - 1] = L::cmp_lt(stack[sp - 1], stack[sp]);
        break;
      case Op::kLe:
        --sp;
        stack[sp - 1] = L::cmp_le(stack[sp - 1], stack[sp]);
        break;
      case Op::kGt:
        --sp;
        stack[sp - 1] = L::cmp_gt(stack[sp - 1], stack[sp]);
        break;
      case Op::kGe:
        --sp;
        stack[sp - 1] = L::cmp_ge(stack[sp - 1], stack[sp]);
        break;
      case Op::kEq:
        --sp;
        stack[sp - 1] = L::cmp_eq(stack[sp - 1], stack[sp]);
        break;
      case Op::kNe:
        --sp;
        stack[sp - 1] = L::cmp_ne(stack[sp - 1], stack[sp]);
        break;
      case Op::kAnd:
        --sp;
        stack[sp - 1] = L::logical_and(stack[sp - 1], stack[sp]);
        break;
      case Op::kOr:
        --sp;
        stack[sp - 1] = L::logical_or(stack[sp - 1], stack[sp]);
        break;
      case Op::kNot:
        stack[sp - 1] = L::logical_not(stack[sp - 1]);
        break;
      case Op::kIteBegin: {
        const Vec cond = stack[--sp];
        BatchFrame<L>& f = frames[fp++];
        f.saved = active;
        f.sub = L::truthy(cond);
        active = L::mask_and(f.saved, f.sub);
        break;
      }
      case Op::kIteElse: {
        const BatchFrame<L>& f = frames[fp - 1];
        active = L::mask_andnot(f.sub, f.saved);
        break;
      }
      case Op::kIteEnd: {
        const BatchFrame<L>& f = frames[--fp];
        const Vec else_v = stack[--sp];
        stack[sp - 1] = L::blend(else_v, stack[sp - 1], f.sub);
        active = f.saved;
        break;
      }
      case Op::kChoiceBegin: {
        BatchFrame<L>& f = frames[fp++];
        f.saved = active;
        const double* hv = holes + static_cast<std::size_t>(in.a) * kW;
        const std::int64_t count = in.b;
        for (std::size_t i = 0; i < kW; ++i) {
          const auto raw = static_cast<std::int64_t>(std::llround(hv[i]));
          f.sel[i] = static_cast<std::int32_t>(
              std::clamp<std::int64_t>(raw, 0, count - 1));
        }
        break;
      }
      case Op::kChoiceArm: {
        BatchFrame<L>& f = frames[fp - 1];
        unsigned sel_bits = 0;
        for (std::size_t i = 0; i < kW; ++i)
          if (f.sel[i] == in.a) sel_bits |= 1u << i;
        f.sub = L::mask_and(f.saved, L::from_bits(sel_bits));
        active = f.sub;
        break;
      }
      case Op::kChoiceAccum: {
        const BatchFrame<L>& f = frames[fp - 1];
        const Vec arm = stack[--sp];
        stack[sp - 1] = L::blend(stack[sp - 1], arm, f.sub);
        break;
      }
      case Op::kChoiceEnd: {
        const BatchFrame<L>& f = frames[--fp];
        active = f.saved;
        break;
      }
      case Op::kRaise:
        poison(err, L::bits(active),
               in.a == 0 ? LaneError::kRaiseNumeric : LaneError::kRaiseBool);
        stack[sp++] = L::broadcast(0.0);
        break;
    }
  }
  L::store(out, stack[sp - 1]);
}

/// W-lane comparison reductions for the survivor constraint checks
/// (lane_gt_bits / lane_abs_diff_gt_bits in compile.h): bit l of the result
/// names lane l.
template <class L>
unsigned run_gt_bits(const double* a, const double* b) {
  return L::bits(L::gt(L::load(a), L::load(b)));
}
template <class L>
unsigned run_abs_diff_gt_bits(const double* a, const double* b, double bound) {
  return L::bits(L::abs_diff_gt(L::load(a), L::load(b), bound));
}

/// Kernel entry points selected by the runtime ISA dispatch in compile.cpp.
void run_batch_scalar(const BatchProgram& p, const double* metrics,
                      const double* holes, double* out, LaneError* err);
void run_batch_avx2(const BatchProgram& p, const double* metrics,
                    const double* holes, double* out, LaneError* err);
unsigned lane_gt_bits_scalar(const double* a, const double* b);
unsigned lane_gt_bits_avx2(const double* a, const double* b);
unsigned lane_abs_diff_gt_bits_scalar(const double* a, const double* b,
                                      double bound);
unsigned lane_abs_diff_gt_bits_avx2(const double* a, const double* b,
                                    double bound);

}  // namespace compsynth::sketch::internal
