#include "oracle/ground_truth.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "sketch/eval.h"
#include "sketch/typecheck.h"

namespace compsynth::oracle {

GroundTruthOracle::GroundTruthOracle(sketch::Sketch sketch,
                                     const sketch::HoleAssignment& target,
                                     double tie_tolerance)
    : sketch_(std::move(sketch)),
      hole_values_(sketch_.hole_values(target)),
      tie_tolerance_(tie_tolerance) {}

GroundTruthOracle::GroundTruthOracle(sketch::Sketch sketch,
                                     sketch::ExprPtr target_body,
                                     double tie_tolerance)
    : sketch_(std::move(sketch)),
      target_body_(std::move(target_body)),
      tie_tolerance_(tie_tolerance) {
  sketch::typecheck_expr(*target_body_, sketch_.metrics().size(),
                         /*hole_count=*/0, /*expect_numeric=*/true);
}

double GroundTruthOracle::target_value(const pref::Scenario& s) const {
  if (target_body_ != nullptr) {
    return sketch::eval_numeric(*target_body_, s.metrics, {});
  }
  return sketch::eval_with_values(sketch_, hole_values_, s.metrics);
}

Preference GroundTruthOracle::do_compare(const pref::Scenario& a,
                                         const pref::Scenario& b) {
  const double va = target_value(a);
  const double vb = target_value(b);
  if (std::abs(va - vb) <= tie_tolerance_) return Preference::kTie;
  return va > vb ? Preference::kFirst : Preference::kSecond;
}

RankingResponse GroundTruthOracle::do_rank(
    std::span<const pref::Scenario> scenarios) {
  // Exact sort by latent value (the ideal user of §4.3), then adjacent-chain
  // relations with ties collapsed.
  std::vector<std::size_t> order(scenarios.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> values(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    values[i] = target_value(scenarios[i]);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t i, std::size_t j) { return values[i] > values[j]; });

  RankingResponse out;
  for (std::size_t k = 0; k + 1 < order.size(); ++k) {
    const std::size_t hi = order[k];
    const std::size_t lo = order[k + 1];
    if (std::abs(values[hi] - values[lo]) <= tie_tolerance_) {
      out.ties.push_back({hi, lo});
    } else {
      out.preferences.push_back({hi, lo});
    }
  }
  return out;
}

}  // namespace compsynth::oracle
