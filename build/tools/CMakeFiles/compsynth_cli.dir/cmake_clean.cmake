file(REMOVE_RECURSE
  "CMakeFiles/compsynth_cli.dir/compsynth_cli.cpp.o"
  "CMakeFiles/compsynth_cli.dir/compsynth_cli.cpp.o.d"
  "compsynth_cli"
  "compsynth_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsynth_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
