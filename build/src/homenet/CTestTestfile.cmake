# CMake generated Testfile for 
# Source directory: /root/repo/src/homenet
# Build directory: /root/repo/build/src/homenet
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
