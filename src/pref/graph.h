// The preference graph G of paper §4.2.
//
// Vertices are concrete scenarios; a directed edge u -> v records that the
// user prefers u over v, so any synthesized objective f must satisfy
// f(u) > f(v). Tie pairs record "indistinguishable" answers (the paper notes
// users need not give a full rank); for a tie {u, v} the synthesizer requires
// |f(u) - f(v)| <= margin, which both preserves the ground truth and
// eliminates the two candidates whose disagreement produced the query —
// guaranteeing loop progress.
//
// A consistent user yields a DAG. Edges that would close a cycle are either
// rejected (default) or recorded for later repair (noisy-user mode, §6.1).
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "pref/scenario.h"

namespace compsynth::obs {
struct RunContext;
}

namespace compsynth::pref {

using VertexId = std::size_t;

/// A strict preference: `better` is preferred over `worse`.
/// `weight` expresses confidence and guides cycle repair (heavier survives).
struct Edge {
  VertexId better = 0;
  VertexId worse = 0;
  double weight = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Outcome of inserting a preference.
enum class AddResult {
  kAdded,      // new edge recorded
  kDuplicate,  // identical edge already present (weight merged)
  kCycle,      // rejected: would contradict existing preferences
  kSelfLoop,   // rejected: a scenario cannot be preferred over itself
};

class PreferenceGraph {
 public:
  /// If `allow_inconsistent` is true, cycle-closing edges are recorded
  /// instead of rejected; call repair() before solving.
  explicit PreferenceGraph(bool allow_inconsistent = false)
      : allow_inconsistent_(allow_inconsistent) {}

  /// Whether cycle-closing edges are recorded (noisy-user mode) rather than
  /// rejected. Persisted with the graph so a resumed session reloads it in
  /// the same mode.
  bool allows_inconsistent() const { return allow_inconsistent_; }

  /// Interns a scenario, returning its vertex id (deduplicates exact matches).
  VertexId intern(const Scenario& s);

  /// Returns the id of an already-interned scenario, if present.
  std::optional<VertexId> find(const Scenario& s) const;

  const Scenario& scenario(VertexId v) const { return scenarios_.at(v); }
  std::size_t vertex_count() const { return scenarios_.size(); }

  /// Sets/overwrites a vertex's human-readable label (annotation only —
  /// never part of interning identity). Throws std::out_of_range on an
  /// unknown vertex.
  void set_label(VertexId v, std::string label) {
    scenarios_.at(v).label = std::move(label);
  }

  /// Records `better > worse`. Duplicates accumulate weight.
  AddResult add_preference(VertexId better, VertexId worse, double weight = 1.0);

  /// Records that the user could not distinguish u and v. Symmetric;
  /// self-ties and duplicates are ignored. Returns true if newly recorded.
  bool add_tie(VertexId u, VertexId v);

  const std::vector<Edge>& edges() const { return edges_; }
  const std::vector<std::pair<VertexId, VertexId>>& ties() const { return ties_; }

  /// True when `to` is reachable from `from` along preference edges.
  bool reachable(VertexId from, VertexId to) const;

  /// True when the strict-preference relation contains a cycle.
  bool has_cycle() const;

  /// A topological order of the vertices (most-preferred groups first).
  /// Empty when the graph has a cycle.
  std::vector<VertexId> topological_order() const;

  /// Removes a cheapest-in-cycle set of edges until acyclic (greedy feedback
  /// edge heuristic; §6.1 robustness). Returns the removed edges.
  std::vector<Edge> repair();

  /// Drops the single lowest-weight edge (least-trusted answer); used when
  /// an acyclic graph is still unsatisfiable over the sketch space.
  /// Returns the removed edge, or nullopt when the graph has no edges.
  std::optional<Edge> drop_lightest_edge();

  /// Removes edges implied by transitivity (u -> v when u still reaches v
  /// through other edges). Sound for constraint purposes — f(u) > f(w) and
  /// f(w) > f(v) already force f(u) > f(v) — and shrinks every subsequent
  /// solver query. Returns the number of edges removed. Requires an acyclic
  /// graph (throws std::logic_error otherwise).
  std::size_t transitive_reduce();

  /// Observability: when set (non-owning; may be null), every preference /
  /// tie insertion emits a "pref_edge" trace event and bumps the pref.*
  /// counters. The synthesizer wires this up for the duration of a run.
  void set_run_context(const obs::RunContext* ctx) { obs_ = ctx; }

 private:
  std::optional<std::size_t> edge_index(VertexId better, VertexId worse) const;
  bool reachable_over(VertexId from, VertexId to,
                      const std::vector<Edge>& edges) const;
  std::optional<std::vector<std::size_t>> find_cycle_edges() const;

  bool allow_inconsistent_;
  std::vector<Scenario> scenarios_;
  std::vector<Edge> edges_;
  std::vector<std::pair<VertexId, VertexId>> ties_;
  const obs::RunContext* obs_ = nullptr;  // not serialized; copies share it
};

}  // namespace compsynth::pref
