file(REMOVE_RECURSE
  "CMakeFiles/compsynth_util.dir/log.cpp.o"
  "CMakeFiles/compsynth_util.dir/log.cpp.o.d"
  "CMakeFiles/compsynth_util.dir/stats.cpp.o"
  "CMakeFiles/compsynth_util.dir/stats.cpp.o.d"
  "CMakeFiles/compsynth_util.dir/table.cpp.o"
  "CMakeFiles/compsynth_util.dir/table.cpp.o.d"
  "libcompsynth_util.a"
  "libcompsynth_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsynth_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
