# Empty compiler generated dependencies file for compsynth_synth.
# This may be replaced when dependencies are built.
