#include "solver/z3_finder.h"

#include <z3++.h>

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/run_context.h"
#include "pref/serialize.h"
#include "sketch/printer.h"
#include "solver/solver_cache.h"
#include "solver/z3_encoder.h"
#include "util/log.h"

namespace compsynth::solver {

namespace {

constexpr int kMaxViabilityBlocks = 256;

const char* check_result_name(z3::check_result r) {
  if (r == z3::sat) return "sat";
  if (r == z3::unsat) return "unsat";
  return "unknown";
}

void set_timeout(z3::context& ctx, z3::solver& s, unsigned timeout_ms) {
  if (timeout_ms == 0) return;
  z3::params p(ctx);
  p.set("timeout", timeout_ms);
  s.set(p);
}

// The queries we emit are pure QF_NRA, for which the nlsat tactic is a
// complete decision procedure — and measurably faster here than the default
// portfolio (the final uniqueness proof drops ~10x). nlsat is primary.
//
// A tactic-built solver re-runs the tactic over its current assertion list
// on every check, so its verdict AND model are a pure function of that
// list: push/pop history never leaks into the answer, only the surviving
// assertions do. This is what makes the incremental path transparent
// (docs/SOLVER.md §Incremental).
z3::solver make_solver(z3::context& ctx, unsigned timeout_ms) {
  z3::solver s = z3::tactic(ctx, "qfnra-nlsat").mk_solver();
  set_timeout(ctx, s, timeout_ms);
  return s;
}

bool same_constraint(const pref::Edge& a, const pref::Edge& b) {
  // Weight is repair metadata; only the endpoints are asserted.
  return a.better == b.better && a.worse == b.worse;
}

// --- Cache value blobs ----------------------------------------------------
//
// Versioned plain-text encodings of the two query results. Corrupt blobs
// throw std::invalid_argument (a restored @cache section is external input).

[[noreturn]] void bad_blob(const char* why) {
  throw std::invalid_argument(std::string("Z3Finder: corrupt cache blob: ") +
                              why);
}

void encode_assignment(std::ostream& os, const char* tag,
                       const sketch::HoleAssignment& a) {
  os << tag << ' ' << a.index.size();
  for (const std::int64_t i : a.index) os << ' ' << i;
  os << '\n';
}

sketch::HoleAssignment decode_assignment(std::istream& in, const char* tag) {
  std::string seen;
  std::size_t n = 0;
  if (!(in >> seen >> n) || seen != tag) bad_blob("assignment header");
  sketch::HoleAssignment a;
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t v = 0;
    if (!(in >> v)) bad_blob("assignment index");
    a.index.push_back(v);
  }
  return a;
}

std::string encode_dist_result(const FinderResult& res) {
  std::ostringstream os;
  os.precision(17);
  os << "distresult 1\nstatus " << static_cast<int>(res.status) << '\n';
  encode_assignment(os, "a", res.candidate_a);
  encode_assignment(os, "b", res.candidate_b);
  os << "pairs " << res.pairs.size() << '\n';
  for (const DistinguishingPair& p : res.pairs) {
    os << "pair " << p.preferred_by_a.metrics.size();
    for (const double v : p.preferred_by_a.metrics) os << ' ' << v;
    for (const double v : p.preferred_by_b.metrics) os << ' ' << v;
    os << '\n';
  }
  return os.str();
}

FinderResult decode_dist_result(const std::string& blob) {
  std::istringstream in(blob);
  std::string tag;
  int version = 0;
  if (!(in >> tag >> version) || tag != "distresult") bad_blob("header");
  if (version != 1) bad_blob("unsupported version");
  int status = 0;
  if (!(in >> tag >> status) || tag != "status" || status < 0 || status > 3) {
    bad_blob("status");
  }
  FinderResult res;
  res.status = static_cast<FinderStatus>(status);
  res.candidate_a = decode_assignment(in, "a");
  res.candidate_b = decode_assignment(in, "b");
  std::size_t pairs = 0;
  if (!(in >> tag >> pairs) || tag != "pairs") bad_blob("pair count");
  for (std::size_t p = 0; p < pairs; ++p) {
    std::size_t metrics = 0;
    if (!(in >> tag >> metrics) || tag != "pair") bad_blob("pair header");
    DistinguishingPair pair;
    for (std::size_t m = 0; m < 2 * metrics; ++m) {
      double v = 0;
      if (!(in >> v)) bad_blob("pair metric");
      (m < metrics ? pair.preferred_by_a : pair.preferred_by_b)
          .metrics.push_back(v);
    }
    res.pairs.push_back(std::move(pair));
  }
  return res;
}

std::string encode_consistent(const std::optional<sketch::HoleAssignment>& a) {
  std::ostringstream os;
  os << "consresult 1\nsome " << (a.has_value() ? 1 : 0) << '\n';
  if (a.has_value()) encode_assignment(os, "a", *a);
  return os.str();
}

std::optional<sketch::HoleAssignment> decode_consistent(
    const std::string& blob) {
  std::istringstream in(blob);
  std::string tag;
  int version = 0;
  if (!(in >> tag >> version) || tag != "consresult") bad_blob("header");
  if (version != 1) bad_blob("unsupported version");
  int some = 0;
  if (!(in >> tag >> some) || tag != "some") bad_blob("some flag");
  if (some == 0) return std::nullopt;
  return decode_assignment(in, "a");
}

// Interval pre-check guard band: interval corners are computed in double
// arithmetic while Z3 reasons over exact rationals, so an enclosure bound
// can sit a few ulps inside the true real-arithmetic extremum. A refutation
// is only claimed when the gap clears this absolute+relative slack, so a
// pre-check can never fire on a query Z3 would have found satisfiable.
double precheck_slack(const sketch::Interval& a, const sketch::Interval& b) {
  const double scale = std::max({1.0, std::fabs(a.lo), std::fabs(a.hi),
                                 std::fabs(b.lo), std::fabs(b.hi)});
  return 1e-9 * scale;
}

bool interval_clean(const sketch::Interval& i) {
  return !i.maybe_nan && !i.maybe_error && i.finite();
}

}  // namespace

// --- Incremental encodings ------------------------------------------------
//
// One encoding = one long-lived Z3 context holding the sketch+G formula.
// Both the incremental path (encoding reused across queries) and the
// from-scratch path (config.incremental off, or a rebuild after the graph
// shrank) run exactly this code, so the assertion sequence — and with a
// tactic solver therefore the verdict and model — is identical either way.
//
// Canonical order (docs/SOLVER.md §Canonical assertion order):
//   level 0  prelude: hole domains, per-pair scenario vars + domain +
//            margin + objective bounds, pair-separation constraints;
//            then every graph edge in arrival order (a's constraint, b's);
//   level 1  all tie constraints (re-asserted in full whenever G grows);
//   level 2  per-call viability model-blocking (popped before returning).
//
// Ties live above the edges because edges only ever append while a new tie
// arrives interleaved with them: popping and re-asserting the (few) ties
// keeps the surviving assertion list in canonical order without touching
// the (many) edge assertions.
//
// Objective terms at graph vertices are memoized in vertex-id order — the
// term-creation order is then identical whether the encoding was built in
// one pass or grown across many calls, keeping the two paths' ASTs equal.

struct Z3Finder::DistEncoding {
  z3::context ctx;
  z3::solver solver;
  const int num_pairs;
  std::vector<z3::expr> ha, hb;
  std::vector<std::vector<z3::expr>> s1_vars, s2_vars;
  std::vector<z3::expr> va, vb;  // objective terms per interned vertex
  std::vector<pref::Edge> edges_asserted;
  std::vector<std::pair<pref::VertexId, pref::VertexId>> ties_asserted;
  bool tie_level_open = false;

  DistEncoding(const sketch::Sketch& sk, const FinderConfig& config,
               const ScenarioDomain& domain,
               const std::optional<sketch::Interval>& bounds, int pairs)
      : solver(make_solver(ctx, config.timeout_ms)), num_pairs(pairs) {
    ha = make_hole_vars(ctx, sk, "a_");
    hb = make_hole_vars(ctx, sk, "b_");
    solver.add(hole_domain_constraint(ctx, sk, ha));
    solver.add(hole_domain_constraint(ctx, sk, hb));

    // Fresh scenario variables for each requested distinguishing pair.
    const z3::expr margin = real_of_double(ctx, config.distinguish_margin);
    for (int p = 0; p < num_pairs; ++p) {
      auto make_scenario_vars = [&](const char* tag) {
        std::vector<z3::expr> vars;
        for (const sketch::MetricSpec& m : sk.metrics()) {
          const std::string name =
              "p" + std::to_string(p) + "_" + tag + "_" + m.name;
          z3::expr v = ctx.real_const(name.c_str());
          solver.add(v >= real_of_double(ctx, m.lo));
          solver.add(v <= real_of_double(ctx, m.hi));
          vars.push_back(std::move(v));
        }
        if (domain.constraint != nullptr) {
          solver.add(encode_bool(ctx, *domain.constraint, vars, {}));
        }
        return vars;
      };
      s1_vars.push_back(make_scenario_vars("s1"));
      s2_vars.push_back(make_scenario_vars("s2"));

      const z3::expr fa1 = encode_numeric(ctx, *sk.body(), s1_vars.back(), ha);
      const z3::expr fa2 = encode_numeric(ctx, *sk.body(), s2_vars.back(), ha);
      const z3::expr fb1 = encode_numeric(ctx, *sk.body(), s1_vars.back(), hb);
      const z3::expr fb2 = encode_numeric(ctx, *sk.body(), s2_vars.back(), hb);
      solver.add(fa1 >= fa2 + margin);
      solver.add(fb2 >= fb1 + margin);
      if (bounds) {
        const z3::expr lo = real_of_double(ctx, bounds->lo);
        const z3::expr hi = real_of_double(ctx, bounds->hi);
        for (const z3::expr& f : {fa1, fa2, fb1, fb2}) {
          solver.add(f >= lo);
          solver.add(f <= hi);
        }
      }
    }

    // Multiple pairs must be genuinely different questions: each pair's
    // preferred scenario must differ from every earlier pair's by at least
    // 1% of some metric's range. (Without this the solver happily returns k
    // copies of one disagreement and the extra answers teach nothing.) The
    // over-constrained query going UNSAT does NOT prove ranking uniqueness —
    // fewer than k separated witnesses may remain — so that case re-checks
    // with a single pair.
    for (int p = 1; p < num_pairs; ++p) {
      for (int q = 0; q < p; ++q) {
        z3::expr separated = ctx.bool_val(false);
        for (std::size_t m = 0; m < sk.metrics().size(); ++m) {
          const sketch::MetricSpec& spec = sk.metrics()[m];
          const z3::expr delta =
              real_of_double(ctx, (spec.hi - spec.lo) * 0.01);
          separated = separated || (s1_vars[p][m] - s1_vars[q][m] >= delta) ||
                      (s1_vars[q][m] - s1_vars[p][m] >= delta);
        }
        solver.add(separated);
      }
    }
  }

  void intern_vertices(const sketch::Sketch& sk,
                       const pref::PreferenceGraph& graph) {
    for (pref::VertexId v = va.size(); v < graph.vertex_count(); ++v) {
      const std::vector<z3::expr> metrics =
          encode_scenario(ctx, graph.scenario(v).metrics);
      va.push_back(encode_numeric(ctx, *sk.body(), metrics, ha));
      vb.push_back(encode_numeric(ctx, *sk.body(), metrics, hb));
    }
  }

  /// Brings the encoding up to date with `graph`, asserting only what is
  /// new. Returns false when the graph is not an extension of what was
  /// already asserted (an edge/tie was removed or replaced — repair,
  /// transitive reduction, drop_lightest_edge) — the caller must rebuild.
  bool sync(const sketch::Sketch& sk, const FinderConfig& config,
            const pref::PreferenceGraph& graph) {
    const auto& edges = graph.edges();
    const auto& ties = graph.ties();
    if (edges.size() < edges_asserted.size() ||
        ties.size() < ties_asserted.size()) {
      return false;
    }
    for (std::size_t i = 0; i < edges_asserted.size(); ++i) {
      if (!same_constraint(edges[i], edges_asserted[i])) return false;
    }
    for (std::size_t i = 0; i < ties_asserted.size(); ++i) {
      if (ties[i] != ties_asserted[i]) return false;
    }
    const bool grew = edges.size() > edges_asserted.size() ||
                      ties.size() > ties_asserted.size();
    if (!grew && tie_level_open) return true;

    intern_vertices(sk, graph);
    if (tie_level_open) solver.pop(1);  // drop every tie; re-asserted below
    for (std::size_t i = edges_asserted.size(); i < edges.size(); ++i) {
      const pref::Edge& e = edges[i];
      solver.add(va[e.better] > va[e.worse]);
      solver.add(vb[e.better] > vb[e.worse]);
      edges_asserted.push_back(e);
    }
    solver.push();
    tie_level_open = true;
    // Tie bound gets a hair of slack over the oracle's tolerance so that
    // exact rational arithmetic never rejects the (double-evaluated) ground
    // truth.
    const z3::expr bound = real_of_double(ctx, config.tie_tolerance + 1e-9);
    for (const auto& [u, v] : ties) {
      solver.add(va[u] - va[v] <= bound);
      solver.add(va[v] - va[u] <= bound);
      solver.add(vb[u] - vb[v] <= bound);
      solver.add(vb[v] - vb[u] <= bound);
    }
    ties_asserted = ties;
    return true;
  }
};

// Single-candidate analogue of DistEncoding, for find_consistent: hole
// domain at level 0 plus graph edges, ties at level 1, viability blocks at
// level 2. Same canonical order, same rebuild rule.
struct Z3Finder::ConsEncoding {
  z3::context ctx;
  z3::solver solver;
  std::vector<z3::expr> holes;
  std::vector<z3::expr> values;  // objective terms per interned vertex
  std::vector<pref::Edge> edges_asserted;
  std::vector<std::pair<pref::VertexId, pref::VertexId>> ties_asserted;
  bool tie_level_open = false;

  ConsEncoding(const sketch::Sketch& sk, const FinderConfig& config)
      : solver(make_solver(ctx, config.timeout_ms)) {
    holes = make_hole_vars(ctx, sk, "h_");
    solver.add(hole_domain_constraint(ctx, sk, holes));
  }

  void intern_vertices(const sketch::Sketch& sk,
                       const pref::PreferenceGraph& graph) {
    for (pref::VertexId v = values.size(); v < graph.vertex_count(); ++v) {
      const std::vector<z3::expr> metrics =
          encode_scenario(ctx, graph.scenario(v).metrics);
      values.push_back(encode_numeric(ctx, *sk.body(), metrics, holes));
    }
  }

  bool sync(const sketch::Sketch& sk, const FinderConfig& config,
            const pref::PreferenceGraph& graph) {
    const auto& edges = graph.edges();
    const auto& ties = graph.ties();
    if (edges.size() < edges_asserted.size() ||
        ties.size() < ties_asserted.size()) {
      return false;
    }
    for (std::size_t i = 0; i < edges_asserted.size(); ++i) {
      if (!same_constraint(edges[i], edges_asserted[i])) return false;
    }
    for (std::size_t i = 0; i < ties_asserted.size(); ++i) {
      if (ties[i] != ties_asserted[i]) return false;
    }
    const bool grew = edges.size() > edges_asserted.size() ||
                      ties.size() > ties_asserted.size();
    if (!grew && tie_level_open) return true;

    intern_vertices(sk, graph);
    if (tie_level_open) solver.pop(1);
    for (std::size_t i = edges_asserted.size(); i < edges.size(); ++i) {
      const pref::Edge& e = edges[i];
      solver.add(values[e.better] > values[e.worse]);
      edges_asserted.push_back(e);
    }
    solver.push();
    tie_level_open = true;
    const z3::expr bound = real_of_double(ctx, config.tie_tolerance + 1e-9);
    for (const auto& [u, v] : ties) {
      solver.add(values[u] - values[v] <= bound);
      solver.add(values[v] - values[u] <= bound);
    }
    ties_asserted = ties;
    return true;
  }
};

struct Z3Finder::CheckOutcome {
  z3::check_result result = z3::unknown;
  std::optional<z3::model> model;  // engaged iff result == sat
};

// Registers the context being checked so interrupt() can reach it from
// another thread; closes the window where an interrupt lands between the
// flag flip and the check by re-checking the flag after registration.
class ActiveCheckGuard {
 public:
  ActiveCheckGuard(Z3Finder& finder, z3::context& ctx) : finder_(finder) {
    const util::MutexLock lock(finder_.active_mutex_);
    finder_.active_ctx_ = &ctx;
    if (finder_.interrupted_.load()) ctx.interrupt();
  }
  ActiveCheckGuard(const ActiveCheckGuard&) = delete;
  ActiveCheckGuard& operator=(const ActiveCheckGuard&) = delete;
  ~ActiveCheckGuard() {
    const util::MutexLock lock(finder_.active_mutex_);
    finder_.active_ctx_ = nullptr;
  }

 private:
  Z3Finder& finder_;
};

Z3Finder::Z3Finder(sketch::Sketch sketch, FinderConfig config, Viability viability,
                   ScenarioDomain domain)
    : sketch_(std::move(sketch)),
      config_(config),
      viability_(std::move(viability)),
      domain_(std::move(domain)) {
  validate_domain(sketch_, domain_);
  if (config_.distinguish_margin <= config_.tie_tolerance) {
    throw std::invalid_argument(
        "Z3Finder: distinguish_margin must exceed tie_tolerance "
        "(otherwise an oracle tie answer cannot eliminate candidates)");
  }
  // Interval analysis: a finite, NaN/error-free enclosure of the objective
  // over the whole input space can be asserted on every encoded objective
  // term. The bound is implied by the existing range/grid constraints, so
  // verdicts (sat/unsat) are unchanged; it only narrows the real search.
  // The same enclosure gates and powers the interval pre-checks.
  const sketch::AnalysisResult analysis = sketch::analyze(sketch_);
  if (analysis.well_typed && !analysis.output.maybe_nan &&
      !analysis.output.maybe_error && analysis.output.finite()) {
    objective_bounds_ = analysis.output;
  }
  // Everything constructor-fixed that a query's outcome depends on goes into
  // the cache-key prefix; the per-query part (kind, num_pairs, graph) is
  // appended in cache_key(). Timeouts are excluded: they only influence
  // kUnknown results, which are never cached.
  std::ostringstream key;
  key.precision(17);
  key << "sketch\n" << sketch::print_sketch(sketch_) << "\ndomain\n";
  if (domain_.constraint != nullptr) {
    key << sketch::print_expr(*domain_.constraint, sketch_);
  }
  key << "\nmargins " << config_.tie_tolerance << ' '
      << config_.distinguish_margin << '\n';
  cache_key_prefix_ = key.str();
}

Z3Finder::~Z3Finder() = default;

void Z3Finder::log_query(z3::solver& solver, const char* kind) {
  if (query_log_ == nullptr) return;
  *query_log_ << "; compsynth query " << query_count_ << " (" << kind << ")\n"
              << solver.to_smt2() << "\n";
}

void Z3Finder::interrupt() {
  interrupted_.store(true);
  const util::MutexLock lock(active_mutex_);
  if (active_ctx_ != nullptr) active_ctx_->interrupt();
}

void Z3Finder::reset_after_interrupt() {
  if (!interrupted_.exchange(false)) return;
  // An interrupted tactic leaves its solver in an unspecified state (and a
  // pending interrupt flag may still be set on the context); drop the
  // incremental encodings so the next query re-encodes in a fresh context.
  dist_encodings_.clear();
  cons_encoding_.reset();
}

void Z3Finder::observe_graph(const pref::PreferenceGraph& graph) {
  bool match = interned_metrics_.size() <= graph.vertex_count();
  for (std::size_t v = 0; match && v < interned_metrics_.size(); ++v) {
    match = interned_metrics_[v] == graph.scenario(v).metrics;
  }
  if (!match) {
    dist_encodings_.clear();
    cons_encoding_.reset();
    vertex_intervals_.clear();
    interned_metrics_.clear();
  }
  for (std::size_t v = interned_metrics_.size(); v < graph.vertex_count();
       ++v) {
    interned_metrics_.push_back(graph.scenario(v).metrics);
  }
}

// --- Checking -------------------------------------------------------------

// Retry an `unknown` (timeout / resource-out) with the default portfolio
// solver, which sometimes succeeds where a single tactic stalls. The
// fallback is a scratch solver over a copy of the assertions — the
// persistent incremental solver is never replaced; the model (if any) is
// extracted from whichever solver produced it before it goes away.
Z3Finder::CheckOutcome Z3Finder::check_with_fallback(z3::context& ctx,
                                                     z3::solver& s) {
  ActiveCheckGuard guard(*this, ctx);
  CheckOutcome out;
  out.result = s.check();
  if (out.result == z3::sat) {
    out.model = s.get_model();
    return out;
  }
  if (out.result == z3::unsat) return out;
  if (interrupted_.load()) return out;  // canceled, not stuck: no fallback
  util::log(util::LogLevel::kDebug,
            "nlsat returned unknown; retrying with default solver");
  z3::solver fallback(ctx);
  set_timeout(ctx, fallback, config_.timeout_ms);
  for (const z3::expr& a : s.assertions()) fallback.add(a);
  out.result = fallback.check();
  if (out.result == z3::sat) out.model = fallback.get_model();
  return out;
}

// check_with_fallback wrapped in a "z3_query" span: one event + one
// z3_query.seconds sample per solver invocation, with kind/result/index.
// When a fault injector is attached, a check may be preceded by an injected
// slowdown and/or replaced by an injected transient failure; failures are
// retried with backoff per `config_.retry` ("fault"/"retry" events,
// z3.failures / z3.retries counters) and degrade to `unknown` once the
// budget is spent.
Z3Finder::CheckOutcome Z3Finder::timed_check(z3::context& ctx, z3::solver& s,
                                             const char* kind, long index) {
  util::FaultInjector* injector = injector_.get();
  for (int attempt = 1;; ++attempt) {
    if (injector != nullptr && injector->z3_slowdown()) {
      util::sleep_seconds(injector->plan().z3_slowdown_s);
    }
    if (injector == nullptr || !injector->z3_failure()) {
      obs::Span span(obs_, "z3_query");
      CheckOutcome out = check_with_fallback(ctx, s);
      if (obs_ != nullptr) obs_->count("z3.queries");
      if (obs::TraceEvent* e = span.event()) {
        e->str("kind", kind).integer("index", index).str(
            "result", check_result_name(out.result));
        if (attempt > 1) e->integer("attempt", attempt);
      }
      return out;
    }
    if (obs::active(obs_)) {
      obs_->count("z3.failures");
      if (obs_->tracing()) {
        obs::TraceEvent e("fault");
        e.str("site", "z3").str("kind", "failure").str("op", kind)
            .integer("index", index).integer("attempt", attempt);
        obs_->emit(e);
      }
    }
    if (attempt >= config_.retry.max_attempts) {
      util::log(util::LogLevel::kWarn,
                "Z3Finder: transient failure persisted past the retry "
                "budget; reporting unknown");
      return {};
    }
    const double backoff = config_.retry.backoff_before(attempt + 1);
    if (obs::active(obs_)) {
      obs_->count("z3.retries");
      if (obs_->tracing()) {
        obs::TraceEvent e("retry");
        e.str("site", "z3").str("op", kind).integer("attempt", attempt + 1)
            .num("backoff_s", backoff);
        obs_->emit(e);
      }
    }
    util::sleep_seconds(backoff);
  }
}

// --- SolverCache integration ---------------------------------------------

bool Z3Finder::cache_usable() const {
  // A viability callback and a fault injector both make a query's outcome
  // depend on state outside the (sketch, G, domain) key — blocked models
  // and injected-fault decision streams respectively — so the cache stands
  // down rather than replay a result the live solver might not reproduce.
  return cache_ != nullptr && !viability_.concrete && injector_ == nullptr;
}

std::string Z3Finder::cache_key(const char* kind, int num_pairs,
                                const pref::PreferenceGraph& graph) const {
  std::ostringstream key;
  key << cache_key_prefix_ << kind << ' ' << num_pairs << "\ngraph\n";
  pref::serialize(graph, key);
  return key.str();
}

void Z3Finder::note_cache(const char* op, const char* kind,
                          const std::string& key) const {
  if (!obs::active(obs_)) return;
  obs_->count(op[0] == 'h'   ? "solver.cache_hits"
              : op[0] == 'm' ? "solver.cache_misses"
                             : "solver.cache_stores");
  if (obs_->tracing()) {
    std::ostringstream hash;
    hash << std::hex << SolverCache::key_hash(key);
    obs::TraceEvent e("solver_cache");
    e.str("op", op).str("kind", kind).str("key", hash.str());
    obs_->emit(e);
  }
}

// --- Interval pre-checks --------------------------------------------------

bool Z3Finder::precheck_enabled() const {
  return config_.interval_precheck && objective_bounds_.has_value();
}

const sketch::Interval& Z3Finder::vertex_interval(
    const pref::PreferenceGraph& graph, pref::VertexId v) {
  while (vertex_intervals_.size() <= v) {
    const pref::VertexId next = vertex_intervals_.size();
    sketch::Box box = sketch::full_box(sketch_);
    const std::vector<double>& metrics = graph.scenario(next).metrics;
    for (std::size_t m = 0; m < box.metrics.size() && m < metrics.size(); ++m) {
      box.metrics[m] = sketch::Interval::point(metrics[m]);
    }
    vertex_intervals_.push_back(sketch::eval_interval(*sketch_.body(), box));
  }
  return vertex_intervals_[v];
}

bool Z3Finder::precheck_refutes_graph(const pref::PreferenceGraph& graph,
                                      const char* kind) {
  for (const pref::Edge& e : graph.edges()) {
    const sketch::Interval better = vertex_interval(graph, e.better);
    const sketch::Interval worse = vertex_interval(graph, e.worse);
    if (!interval_clean(better) || !interval_clean(worse)) continue;
    // Every candidate satisfies f(better) <= f(worse) with room to spare:
    // the strict edge constraint is unsatisfiable over the whole grid.
    if (better.hi < worse.lo - precheck_slack(better, worse)) {
      note_precheck(kind, "edge_refuted");
      return true;
    }
  }
  const double tie_bound = config_.tie_tolerance + 1e-9;
  for (const auto& [u, v] : graph.ties()) {
    const sketch::Interval iu = vertex_interval(graph, u);
    const sketch::Interval iv = vertex_interval(graph, v);
    if (!interval_clean(iu) || !interval_clean(iv)) continue;
    const sketch::Interval d = sketch::interval_sub(iu, iv);
    // Every candidate separates the tied pair by more than the tolerance.
    if (d.lo > tie_bound + precheck_slack(iu, iv) ||
        d.hi < -(tie_bound + precheck_slack(iu, iv))) {
      note_precheck(kind, "tie_refuted");
      return true;
    }
  }
  return false;
}

void Z3Finder::note_precheck(const char* kind, const char* verdict) const {
  if (!obs::active(obs_)) return;
  obs_->count("solver.precheck_hits");
  if (obs_->tracing()) {
    obs::TraceEvent e("interval_precheck");
    e.str("kind", kind).str("verdict", verdict);
    obs_->emit(e);
  }
}

// --- Queries --------------------------------------------------------------

FinderResult Z3Finder::find_distinguishing(const pref::PreferenceGraph& graph,
                                           int num_pairs) {
  if (num_pairs < 1) throw std::invalid_argument("find_distinguishing: num_pairs < 1");
  reset_after_interrupt();

  const bool use_cache = cache_usable();
  std::string key;
  if (use_cache) {
    key = cache_key("distinguishing", num_pairs, graph);
    if (const std::optional<std::string> hit = cache_->lookup(key)) {
      note_cache("hit", "distinguishing", key);
      return decode_dist_result(*hit);
    }
    note_cache("miss", "distinguishing", key);
  }

  FinderResult res = find_distinguishing_uncached(graph, num_pairs);
  if (use_cache && res.status != FinderStatus::kUnknown) {
    cache_->store(key, encode_dist_result(res));
    note_cache("store", "distinguishing", key);
  }
  return res;
}

FinderResult Z3Finder::resolve_unsat(const pref::PreferenceGraph& graph,
                                     int num_pairs) {
  if (num_pairs > 1) return find_distinguishing(graph, 1);
  // Distinguish "no candidate at all" from "unique ranking", and carry
  // the unique ranking's representative out to the caller.
  FinderResult res;
  if (auto representative = find_consistent(graph)) {
    res.status = FinderStatus::kUniqueRanking;
    res.candidate_a = *std::move(representative);
  } else {
    res.status = FinderStatus::kNoCandidate;
  }
  return res;
}

FinderResult Z3Finder::find_distinguishing_uncached(
    const pref::PreferenceGraph& graph, int num_pairs) {
  observe_graph(graph);

  if (precheck_enabled()) {
    // A refuted edge/tie dooms this query AND find_consistent, so the whole
    // UNSAT epilogue is answered without the solver.
    if (precheck_refutes_graph(graph, "distinguishing")) {
      FinderResult res;
      res.status = FinderStatus::kNoCandidate;
      return res;
    }
    // The margin constraint needs the objective enclosure to span at least
    // distinguish_margin; the enclosure is asserted on every objective term,
    // so a narrower one makes the encoded query UNSAT by construction.
    if (objective_bounds_->hi - objective_bounds_->lo <
        config_.distinguish_margin) {
      note_precheck("distinguishing", "margin_width");
      return resolve_unsat(graph, num_pairs);
    }
  }

  DistEncoding* enc = nullptr;
  std::unique_ptr<DistEncoding> scratch;
  if (config_.incremental) {
    std::unique_ptr<DistEncoding>& slot = dist_encodings_[num_pairs];
    if (slot != nullptr && !slot->sync(sketch_, config_, graph)) slot.reset();
    const char* op = slot != nullptr ? "reuse" : "build";
    if (slot == nullptr) {
      slot = std::make_unique<DistEncoding>(sketch_, config_, domain_,
                                            objective_bounds_, num_pairs);
      slot->sync(sketch_, config_, graph);
    }
    if (obs::active(obs_)) {
      obs_->count(op[0] == 'r' ? "z3.incremental_reuses"
                               : "z3.incremental_builds");
      if (obs_->tracing()) {
        obs::TraceEvent e("z3_incremental");
        e.str("kind", "distinguishing").str("op", op)
            .integer("edges", static_cast<long>(graph.edges().size()))
            .integer("ties", static_cast<long>(graph.ties().size()));
        obs_->emit(e);
      }
    }
    enc = slot.get();
  } else {
    scratch = std::make_unique<DistEncoding>(sketch_, config_, domain_,
                                             objective_bounds_, num_pairs);
    scratch->sync(sketch_, config_, graph);
    enc = scratch.get();
  }

  z3::solver& solver = enc->solver;
  z3::context& ctx = enc->ctx;
  // Per-call scope for viability model-blocking: popped on every exit so the
  // persistent encoding only ever holds the canonical assertions.
  solver.push();
  struct PopGuard {
    z3::solver& s;
    ~PopGuard() { s.pop(1); }
  } pop_guard{solver};

  for (int attempt = 0; attempt < kMaxViabilityBlocks; ++attempt) {
    ++query_count_;
    log_query(solver, "distinguishing");
    const CheckOutcome out =
        timed_check(ctx, solver, "distinguishing", query_count_);
    if (out.result == z3::unsat) return resolve_unsat(graph, num_pairs);
    if (out.result == z3::unknown) {
      FinderResult res;
      res.status = FinderStatus::kUnknown;
      return res;
    }

    const z3::model& model = *out.model;
    auto extract_assignment = [&](const std::vector<z3::expr>& vars) {
      sketch::HoleAssignment a;
      for (std::size_t i = 0; i < vars.size(); ++i) {
        a.index.push_back(sketch_.holes()[i].nearest_index(value_of(model, vars[i])));
      }
      return a;
    };
    FinderResult res;
    res.status = FinderStatus::kFound;
    res.candidate_a = extract_assignment(enc->ha);
    res.candidate_b = extract_assignment(enc->hb);

    if (viability_.concrete) {
      const std::vector<double> va = sketch_.hole_values(res.candidate_a);
      const std::vector<double> vb = sketch_.hole_values(res.candidate_b);
      z3::expr block = ctx.bool_val(false);
      bool blocked = false;
      auto block_assignment = [&](const std::vector<z3::expr>& vars,
                                  const std::vector<double>& vals) {
        z3::expr same = ctx.bool_val(true);
        for (std::size_t i = 0; i < vars.size(); ++i) {
          same = same && (vars[i] == real_of_double(ctx, vals[i]));
        }
        block = block || !same;
      };
      if (!viability_.concrete(va)) {
        block_assignment(enc->ha, va);
        blocked = true;
      }
      if (!viability_.concrete(vb)) {
        block_assignment(enc->hb, vb);
        blocked = true;
      }
      if (blocked) {
        solver.add(block);
        continue;  // re-check with the non-viable assignment(s) excluded
      }
    }

    for (int p = 0; p < num_pairs; ++p) {
      DistinguishingPair pair;
      for (const z3::expr& v : enc->s1_vars[p]) {
        pair.preferred_by_a.metrics.push_back(value_of(model, v));
      }
      for (const z3::expr& v : enc->s2_vars[p]) {
        pair.preferred_by_b.metrics.push_back(value_of(model, v));
      }
      res.pairs.push_back(std::move(pair));
    }
    return res;
  }
  util::log(util::LogLevel::kWarn, "Z3Finder: viability blocking budget exhausted");
  { FinderResult res; res.status = FinderStatus::kUnknown; return res; }
}

std::optional<sketch::HoleAssignment> Z3Finder::find_consistent(
    const pref::PreferenceGraph& graph) {
  reset_after_interrupt();

  const bool use_cache = cache_usable();
  std::string key;
  if (use_cache) {
    key = cache_key("consistent", 0, graph);
    if (const std::optional<std::string> hit = cache_->lookup(key)) {
      note_cache("hit", "consistent", key);
      return decode_consistent(*hit);
    }
    note_cache("miss", "consistent", key);
  }

  bool decisive = true;
  std::optional<sketch::HoleAssignment> res =
      find_consistent_uncached(graph, &decisive);
  if (use_cache && decisive) {
    cache_->store(key, encode_consistent(res));
    note_cache("store", "consistent", key);
  }
  return res;
}

std::optional<sketch::HoleAssignment> Z3Finder::find_consistent_uncached(
    const pref::PreferenceGraph& graph, bool* decisive) {
  observe_graph(graph);

  if (precheck_enabled() && precheck_refutes_graph(graph, "consistent")) {
    return std::nullopt;
  }

  ConsEncoding* enc = nullptr;
  std::unique_ptr<ConsEncoding> scratch;
  if (config_.incremental) {
    if (cons_encoding_ != nullptr &&
        !cons_encoding_->sync(sketch_, config_, graph)) {
      cons_encoding_.reset();
    }
    const char* op = cons_encoding_ != nullptr ? "reuse" : "build";
    if (cons_encoding_ == nullptr) {
      cons_encoding_ = std::make_unique<ConsEncoding>(sketch_, config_);
      cons_encoding_->sync(sketch_, config_, graph);
    }
    if (obs::active(obs_)) {
      obs_->count(op[0] == 'r' ? "z3.incremental_reuses"
                               : "z3.incremental_builds");
      if (obs_->tracing()) {
        obs::TraceEvent e("z3_incremental");
        e.str("kind", "consistent").str("op", op)
            .integer("edges", static_cast<long>(graph.edges().size()))
            .integer("ties", static_cast<long>(graph.ties().size()));
        obs_->emit(e);
      }
    }
    enc = cons_encoding_.get();
  } else {
    scratch = std::make_unique<ConsEncoding>(sketch_, config_);
    scratch->sync(sketch_, config_, graph);
    enc = scratch.get();
  }

  z3::solver& solver = enc->solver;
  z3::context& ctx = enc->ctx;
  solver.push();
  struct PopGuard {
    z3::solver& s;
    ~PopGuard() { s.pop(1); }
  } pop_guard{solver};

  for (int attempt = 0; attempt < kMaxViabilityBlocks; ++attempt) {
    ++query_count_;
    log_query(solver, "consistent");
    const CheckOutcome out = timed_check(ctx, solver, "consistent", query_count_);
    if (out.result != z3::sat) {
      if (out.result == z3::unknown && decisive != nullptr) *decisive = false;
      return std::nullopt;
    }
    const z3::model& model = *out.model;
    sketch::HoleAssignment a;
    for (std::size_t i = 0; i < enc->holes.size(); ++i) {
      a.index.push_back(
          sketch_.holes()[i].nearest_index(value_of(model, enc->holes[i])));
    }
    if (!viability_.concrete || viability_.concrete(sketch_.hole_values(a))) {
      return a;
    }
    z3::expr same = ctx.bool_val(true);
    const std::vector<double> vals = sketch_.hole_values(a);
    for (std::size_t i = 0; i < enc->holes.size(); ++i) {
      same = same && (enc->holes[i] == real_of_double(ctx, vals[i]));
    }
    solver.add(!same);
  }
  util::log(util::LogLevel::kWarn, "Z3Finder: viability blocking budget exhausted");
  if (decisive != nullptr) *decisive = false;
  return std::nullopt;
}

std::string Z3Finder::save_state() const {
  std::ostringstream os;
  os << "z3finder 1\nqueries " << query_count_ << "\nfaults "
     << (injector_ != nullptr ? 1 : 0) << '\n';
  if (injector_ != nullptr) os << injector_->save_state();
  return os.str();
}

void Z3Finder::restore_state(const std::string& state) {
  const auto bad = [](const char* why) {
    throw std::invalid_argument(std::string("Z3Finder::restore_state: ") + why);
  };
  std::istringstream in(state);
  std::string tag;
  int version = 0;
  if (!(in >> tag >> version) || tag != "z3finder") bad("malformed header");
  if (version != 1) bad("unsupported version");
  long queries = 0;
  if (!(in >> tag >> queries) || tag != "queries") bad("malformed counter");
  int had_injector = 0;
  if (!(in >> tag >> had_injector) || tag != "faults") bad("malformed flag");
  if ((had_injector != 0) != (injector_ != nullptr)) {
    bad("fault injector presence mismatch (configure the same FaultPlan "
        "before restoring)");
  }
  if (injector_ != nullptr) {
    in.ignore();  // newline before the injector's own two lines
    std::string counters, rng;
    if (!std::getline(in, counters) || !std::getline(in, rng)) {
      bad("truncated injector state");
    }
    injector_->restore_state(counters + '\n' + rng + '\n');
  }
  query_count_ = queries;
}

}  // namespace compsynth::solver
