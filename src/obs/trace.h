// Structured event tracing: one JSONL record per synthesis-loop event.
//
// A TraceEvent is a typed, flat key/value record ("iteration",
// "grid_sync", "z3_query", "oracle_query", "pref_edge", ...). Sinks decide
// what happens to it: NullTraceSink (the default everywhere) drops events
// before any field is even built — instrumented code checks enabled() first
// so tracing costs one pointer test when off — and FileTraceSink renders
// each event as one JSON line:
//
//   {"v":1,"ts":0.014072,"run":"cli","ev":"iteration","index":3,...}
//
// The envelope fields are fixed: "v" (schema version, see
// kTraceSchemaVersion), "ts" (seconds since the sink was created, steady
// clock), "run" (the RunContext's run id) and "ev" (event type); everything
// after them is event-specific. docs/OBSERVABILITY.md is the schema
// reference; tools/trace_report.cpp turns a trace file back into a
// human-readable Markdown report.
//
// parse_flat_json is the matching reader: it understands exactly the flat
// one-object-per-line JSON the file sink emits (strings, numbers, bools,
// null) and is shared by trace_report and the golden-trace test.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/line_writer.h"
#include "util/timer.h"

namespace compsynth::obs {

/// Version stamped into every record as "v". Bump when an event type's
/// required keys change incompatibly; docs/OBSERVABILITY.md documents each
/// version's schema.
inline constexpr int kTraceSchemaVersion = 1;

/// Minor schema revision: additive changes (new event types, new optional
/// keys on existing events) that old consumers may safely ignore. Not
/// stamped into records — "v" stays the compatibility gate — but documented
/// in docs/OBSERVABILITY.md so tooling can state what it understands.
/// 1.1: "analysis" events (kind=lint|prune) + grid_sync's "pruned" key.
/// 1.2: durable sessions + fault tolerance — "fault", "retry",
///      "checkpoint", "checkpoint_write" events; run_start's "resumed_at";
///      z3_query's "attempt".
/// 1.3: solver acceleration — "solver_cache", "interval_precheck",
///      "z3_incremental", "portfolio" events; grid_sync's "threads" key;
///      counters solver.cache_{hits,misses,stores}, solver.precheck_hits,
///      z3.incremental_{reuses,builds}, portfolio.{races,grid_wins,z3_wins}.
/// 1.4: synthesis service — "serve_request", "session_swap",
///      "session_rehydrate" events; counters serve.{requests,errors,
///      sessions_created,swaps,rehydrations,advances}, gauge
///      serve.sessions_active, histograms serve.latency.<verb>.seconds.
/// 1.5: batched lane evaluator — grid_sync's "lane_isa" (scalar|avx2) and
///      "lane_width" keys when the kBatch backend ran; counters
///      grid.lane_evals, grid.batch_groups.
/// 1.6: distributed shard sync — "shard_dispatch", "shard_reissue",
///      "worker_fail", "worker_shard", "dist_sync" events; grid_sync's
///      "distributed" key; counters dist.{shards_dispatched,
///      shards_completed,reissues,worker_failures,fallbacks},
///      dist.worker.{requests,faults}, histogram dist.shard.seconds.
inline constexpr int kTraceSchemaMinorVersion = 6;

/// One field value: integer, double, string or bool.
struct FieldValue {
  enum class Kind { kInt, kDouble, kString, kBool };
  Kind kind = Kind::kInt;
  long long i = 0;
  double d = 0;
  bool b = false;
  std::string s;
};

/// A typed event under construction. Field order is preserved in the
/// output; keys must be unique per event (not checked — instrumentation
/// sites are static).
class TraceEvent {
 public:
  explicit TraceEvent(std::string type) : type_(std::move(type)) {}

  TraceEvent& integer(std::string key, long long value);
  TraceEvent& num(std::string key, double value);
  TraceEvent& str(std::string key, std::string value);
  TraceEvent& boolean(std::string key, bool value);

  const std::string& type() const { return type_; }
  const std::vector<std::pair<std::string, FieldValue>>& fields() const {
    return fields_;
  }

 private:
  std::string type_;
  std::vector<std::pair<std::string, FieldValue>> fields_;
};

/// Where events go. Implementations must be safe to call from concurrent
/// threads (pool workers emit too).
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// False when events are dropped unseen; instrumented code skips building
  /// events entirely in that case.
  virtual bool enabled() const { return true; }

  virtual void emit(std::string_view run_id, const TraceEvent& event) = 0;

 protected:
  TraceSink() = default;
};

/// The default: tracing off, near-zero overhead.
class NullTraceSink final : public TraceSink {
 public:
  bool enabled() const override { return false; }
  void emit(std::string_view, const TraceEvent&) override {}
};

/// Appends one JSON line per event to a file. Timestamps ("ts") are seconds
/// since sink construction on the steady clock; lines go through a
/// mutex-guarded LineWriter (shared machinery with util::log_line's stderr
/// writer) so concurrent emitters never interleave mid-line.
class FileTraceSink final : public TraceSink {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit FileTraceSink(const std::string& path);

  void emit(std::string_view run_id, const TraceEvent& event) override;

  const std::string& path() const { return path_; }

 private:
  // No mutex here by design: path_/out_/epoch_ are written only in the
  // constructor, and all post-construction writes flow through writer_,
  // which serializes at line granularity (util/line_writer.h). The
  // Stopwatch read in emit() is a const steady_clock query — safe
  // concurrently.
  std::string path_;
  std::ofstream out_;
  util::LineWriter writer_;
  util::Stopwatch epoch_;
};

/// Escapes `raw` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(std::string_view raw);

/// Renders one complete trace line (envelope + fields), exactly what
/// FileTraceSink writes. Exposed for tests and alternative sinks.
std::string render_trace_line(std::string_view run_id, double ts_seconds,
                              const TraceEvent& event);

/// A parsed flat-JSON value. Numbers are always doubles (JSON has one
/// number type); null parses as kNull.
struct JsonValue {
  enum class Kind { kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::string str;
  double num = 0;
  bool b = false;
};

using JsonObject = std::map<std::string, JsonValue>;

/// Parses one flat JSON object (no nesting — exactly the trace-line shape).
/// Returns nullopt on any syntax error or on nested arrays/objects.
std::optional<JsonObject> parse_flat_json(std::string_view line);

}  // namespace compsynth::obs
