file(REMOVE_RECURSE
  "CMakeFiles/compsynth_abr.dir/algorithms.cpp.o"
  "CMakeFiles/compsynth_abr.dir/algorithms.cpp.o.d"
  "CMakeFiles/compsynth_abr.dir/qoe.cpp.o"
  "CMakeFiles/compsynth_abr.dir/qoe.cpp.o.d"
  "CMakeFiles/compsynth_abr.dir/simulator.cpp.o"
  "CMakeFiles/compsynth_abr.dir/simulator.cpp.o.d"
  "CMakeFiles/compsynth_abr.dir/trace.cpp.o"
  "CMakeFiles/compsynth_abr.dir/trace.cpp.o.d"
  "libcompsynth_abr.a"
  "libcompsynth_abr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsynth_abr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
