# Empty dependencies file for test_te_synth.
# This may be replaced when dependencies are built.
