// End-to-end smoke: synthesize the paper's Fig. 2b target from scratch with
// both back-ends. Deeper coverage lives in the per-module suites.
#include <gtest/gtest.h>

#include "oracle/ground_truth.h"
#include "sketch/library.h"
#include "solver/equivalence.h"
#include "synth/synthesizer.h"

namespace compsynth {
namespace {

TEST(Smoke, Z3SynthesizesSwanTarget) {
  const sketch::Sketch& sk = sketch::swan_sketch();
  const sketch::HoleAssignment target = sketch::swan_target();

  synth::SynthesisConfig config;
  config.seed = 42;
  synth::Synthesizer synthesizer = synth::make_z3_synthesizer(sk, config);
  oracle::GroundTruthOracle user(sk, target, config.finder.tie_tolerance);

  const synth::SynthesisResult result = synthesizer.run(user);
  ASSERT_EQ(result.status, synth::SynthesisStatus::kConverged);
  ASSERT_TRUE(result.objective.has_value());
  EXPECT_TRUE(solver::ranking_equivalent(sk, *result.objective, target,
                                         config.finder));
}

TEST(Smoke, GridSynthesizesSwanTarget) {
  const sketch::Sketch& sk = sketch::swan_sketch();
  const sketch::HoleAssignment target = sketch::swan_target();

  synth::SynthesisConfig config;
  config.seed = 7;
  synth::Synthesizer synthesizer = synth::make_grid_synthesizer(sk, config);
  oracle::GroundTruthOracle user(sk, target, config.finder.tie_tolerance);

  const synth::SynthesisResult result = synthesizer.run(user);
  ASSERT_EQ(result.status, synth::SynthesisStatus::kConverged);
  ASSERT_TRUE(result.objective.has_value());
  EXPECT_TRUE(solver::ranking_equivalent(sk, *result.objective, target,
                                         config.finder));
}

}  // namespace
}  // namespace compsynth
