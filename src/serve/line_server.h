// Reusable line-protocol socket front end.
//
// Factors the daemon plumbing out of serve::Server so every line-delimited
// JSON service in the tree — the synthesis daemon (serve/server.h) and the
// distributed shard workers (dist/worker.h) — shares one implementation of
// endpoint parsing (unix:<path> / tcp:[host:]<port>, ephemeral tcp:0),
// accept/connection threading, '\n' framing with the flood guard, and the
// ack-before-stop shutdown convention.
//
// Threading: one accept thread plus one thread per connection, all joined by
// wait() — never detached. The handler runs on connection threads and may be
// invoked concurrently from several of them; it owns its own locking.
//
// The LineControl out-parameter lets a handler steer the transport:
// stop_after implements shutdown verbs (response on the wire before the stop
// begins, so the requester always hears the ack), and send_prefix /
// abort_after are the deterministic fault hooks the dist worker uses to
// rehearse torn responses and post-ack crashes in-process.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace compsynth::serve {

struct LineServerConfig {
  /// "unix:<path>" or "tcp:<port>" / "tcp:<host>:<port>" (numeric IPv4
  /// host; default 127.0.0.1). TCP port 0 binds an ephemeral port —
  /// endpoint() reports the one chosen.
  std::string listen;
  int backlog = 64;
};

/// Per-request transport directives, filled by the handler.
struct LineControl {
  /// Stop the server after this response is sent (shutdown-verb ack).
  bool stop_after = false;
  /// Send only the first `send_prefix` bytes of the response (no trailing
  /// newline) and drop the connection — a deterministic torn-response
  /// fault. npos = send everything.
  std::size_t send_prefix = std::string::npos;
  /// Hard-stop the server right after the send, skipping the graceful
  /// drain of other connections — simulates a worker crash after the ack.
  bool abort_after = false;
};

class LineServer {
 public:
  /// Handles one request line (CR/LF stripped); returns the response line
  /// (without trailing newline). Must be thread-safe.
  using Handler =
      std::function<std::string(const std::string& line, LineControl* ctl)>;

  /// Binds immediately; throws std::runtime_error on a bad endpoint or bind
  /// failure.
  LineServer(LineServerConfig config, Handler handler);
  ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Starts the accept thread.
  void start();

  /// The bound endpoint in listen syntax (resolves TCP port 0).
  std::string endpoint() const;

  /// Blocks until a shutdown request or stop(), then joins every thread.
  void wait();

  /// Initiates shutdown from outside the protocol (signal handlers, tests).
  /// Graceful: connections are shut down read-side only, so responses
  /// already being written still reach the peer before the close.
  void stop();

 private:
  void accept_loop() EXCLUDES(mu_);
  void connection_loop(int fd) EXCLUDES(mu_);
  void begin_stop() EXCLUDES(mu_);

  LineServerConfig config_;
  Handler handler_;
  // Set in the constructor, read-only afterwards (the accept thread and the
  // destructor both touch listen_fd_, ordered by start()/join()).
  int listen_fd_ = -1;
  bool unix_socket_ = false;
  std::string unix_path_;
  std::string endpoint_;

  util::Mutex mu_;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::set<int> conn_fds_ GUARDED_BY(mu_);
  std::vector<std::thread> conn_threads_ GUARDED_BY(mu_);
  // Joined by wait(); started once by start(). Never detached.
  std::thread accept_thread_;
};

}  // namespace compsynth::serve
