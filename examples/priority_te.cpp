// Multi-class priority trade-offs learned from preferences (paper §2,
// "Expressing fairness and priority requirements").
//
// SWAN strictly prioritizes higher traffic classes; the paper argues a
// weighted max-min allocation "may be more reflective of designer intent" —
// but then someone must pick the weights. This example:
//
//   1. builds a Waxman random WAN with a gravity-model demand matrix and
//      marks the largest flows as the interactive (high-priority) class;
//   2. generates candidate designs: weighted max-min across a sweep of
//      high:low class weights, plus SWAN's strict-priority default;
//   3. learns the architect's latent class trade-off (a floor on
//      interactive throughput plus a value for background traffic) from
//      preference comparisons alone;
//   4. picks the final design with the learned objective and compares with
//      the latent intent's own pick.
//
// Build & run:  ./build/examples/priority_te
#include <cstdio>

#include "oracle/ground_truth.h"
#include "sketch/library.h"
#include "sketch/printer.h"
#include "synth/synthesizer.h"
#include "te/scenario_gen.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace compsynth;

  // 1. Random WAN + gravity workload, two traffic classes.
  util::Rng rng(909);
  const te::Topology topo = te::waxman_wan(rng, 12, 0.5, 0.5);
  const auto demands = te::gravity_demands(topo, rng, 60.0, 10);
  std::vector<te::FlowRequest> requests;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    te::Flow flow{.src = demands[i].src,
                  .dst = demands[i].dst,
                  .demand_gbps = demands[i].demand_gbps,
                  .priority = i < 4 ? 1 : 0,  // biggest flows are interactive
                  .name = "f" + std::to_string(i)};
    requests.push_back(te::make_request(topo, std::move(flow), 3));
  }
  std::printf("Waxman WAN: %zu nodes, %zu links; %zu flows (4 high-priority)\n\n",
              topo.node_count(), topo.link_count(), requests.size());

  // 2. Candidate designs across class-weight ratios + strict priority.
  const std::vector<double> weights{1, 2, 4, 8, 16};
  const auto designs = te::sweep_class_weights(topo, requests, weights);
  util::Table table({"design", "hi-class (Gbps)", "lo-class (Gbps)",
                     "latency (ms)"});
  for (const auto& d : designs) {
    table.add_row({d.label, util::format_number(d.scenario.metrics[0]),
                   util::format_number(d.scenario.metrics[1]),
                   util::format_number(d.scenario.metrics[2])});
  }
  std::printf("Candidate designs:\n%s\n", table.to_string().c_str());

  // 3. Learn the architect's class trade-off from comparisons.
  const sketch::Sketch& sk = sketch::swan_priority_sketch();
  sketch::HoleAssignment latent;
  latent.index = {sk.holes()[0].nearest_index(10),   // interactive floor
                  sk.holes()[1].nearest_index(4),    // background value
                  sk.holes()[2].nearest_index(0.5)}; // mild latency penalty

  synth::SynthesisConfig config;
  config.seed = 42;
  config.max_iterations = 300;
  synth::Synthesizer synthesizer = synth::make_grid_synthesizer(sk, config);
  oracle::GroundTruthOracle architect(sk, latent, config.finder.tie_tolerance);
  const synth::SynthesisResult learned = synthesizer.run(architect);
  if (!learned.objective) {
    std::printf("synthesis failed\n");
    return 1;
  }
  std::printf("Learned class objective after %d interactions:\n  %s\n\n",
              learned.interactions,
              sketch::print_instantiated(sk, *learned.objective).c_str());

  // 4. Pick the design.
  const std::size_t picked = te::pick_best(sk, *learned.objective, designs);
  const std::size_t truth = te::pick_best(sk, latent, designs);
  std::printf("learned objective picks:  %s\n", designs[picked].label.c_str());
  std::printf("latent intent would pick: %s\n", designs[truth].label.c_str());
  const bool agree = designs[picked].scenario == designs[truth].scenario;
  std::printf("agreement: %s\n", agree ? "YES" : "NO");
  return agree ? 0 : 1;
}
