#include "serve/protocol.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/trace.h"

namespace compsynth::serve {

namespace {

// Pulls an integer-valued field out of a parsed request object. Returns
// false (with an error message) on a non-numeric or non-integral value.
bool take_int(const obs::JsonObject& obj, const char* name, long long lo,
              long long hi, long long* out, std::string* err) {
  const auto it = obj.find(name);
  if (it == obj.end()) return true;  // optional; keep the default
  if (it->second.kind != obs::JsonValue::Kind::kNumber) {
    *err = std::string(name) + " must be a number";
    return false;
  }
  const double v = it->second.num;
  if (!std::isfinite(v) || v != std::floor(v)) {
    *err = std::string(name) + " must be an integer";
    return false;
  }
  if (v < static_cast<double>(lo) || v > static_cast<double>(hi)) {
    *err = std::string(name) + " out of range";
    return false;
  }
  *out = static_cast<long long>(v);
  return true;
}

bool take_str(const obs::JsonObject& obj, const char* name, std::string* out) {
  const auto it = obj.find(name);
  if (it == obj.end()) return true;
  if (it->second.kind != obs::JsonValue::Kind::kString) return false;
  *out = it->second.str;
  return true;
}

}  // namespace

const char* verb_name(Verb verb) {
  switch (verb) {
    case Verb::kCreate: return "create";
    case Verb::kNext: return "next";
    case Verb::kAnswer: return "answer";
    case Verb::kInspect: return "inspect";
    case Verb::kEvict: return "evict";
    case Verb::kShutdown: return "shutdown";
  }
  return "?";
}

std::optional<Verb> parse_verb(std::string_view name) {
  if (name == "create") return Verb::kCreate;
  if (name == "next") return Verb::kNext;
  if (name == "answer") return Verb::kAnswer;
  if (name == "inspect") return Verb::kInspect;
  if (name == "evict") return Verb::kEvict;
  if (name == "shutdown") return Verb::kShutdown;
  return std::nullopt;
}

const char* preference_name(oracle::Preference p) {
  switch (p) {
    case oracle::Preference::kFirst: return "first";
    case oracle::Preference::kSecond: return "second";
    case oracle::Preference::kTie: return "tie";
  }
  return "?";
}

std::optional<oracle::Preference> parse_preference(std::string_view name) {
  if (name == "first") return oracle::Preference::kFirst;
  if (name == "second") return oracle::Preference::kSecond;
  if (name == "tie") return oracle::Preference::kTie;
  return std::nullopt;
}

bool valid_session_id(std::string_view id) {
  if (id.empty() || id.size() > 64 || id.front() == '.') return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string encode_metrics(const std::vector<double>& metrics) {
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%.17g", metrics[i]);
    if (i > 0) out += ' ';
    out += buf;
  }
  return out;
}

std::string scenario_key(const pref::Scenario& s) {
  return encode_metrics(s.metrics);
}

std::optional<std::vector<double>> decode_metrics(std::string_view text) {
  std::vector<double> out;
  std::istringstream is{std::string(text)};
  std::string token;
  while (is >> token) {
    std::size_t used = 0;
    double v = 0;
    try {
      v = std::stod(token, &used);
    } catch (const std::exception&) {
      return std::nullopt;
    }
    if (used != token.size()) return std::nullopt;
    out.push_back(v);
  }
  if (out.empty()) return std::nullopt;
  return out;
}

std::variant<Request, ParseError> parse_request(std::string_view line) {
  const std::optional<obs::JsonObject> parsed = obs::parse_flat_json(line);
  if (!parsed) {
    return ParseError{kErrParse, "request is not one flat JSON object"};
  }
  const obs::JsonObject& obj = *parsed;

  const auto verb_it = obj.find("verb");
  if (verb_it == obj.end() ||
      verb_it->second.kind != obs::JsonValue::Kind::kString) {
    return ParseError{kErrVerb, "missing string field 'verb'"};
  }
  const std::optional<Verb> verb = parse_verb(verb_it->second.str);
  if (!verb) {
    return ParseError{kErrVerb, "unknown verb '" + verb_it->second.str + "'"};
  }

  Request req;
  req.verb = *verb;
  std::string err;
  if (!take_str(obj, "session", &req.session)) {
    return ParseError{kErrField, "session must be a string"};
  }
  const bool needs_session = req.verb != Verb::kShutdown &&
                             !(req.verb == Verb::kInspect && req.session.empty());
  if (needs_session && !valid_session_id(req.session)) {
    return ParseError{kErrId,
                      "session id must match [A-Za-z0-9._-]{1,64} and not "
                      "start with '.'"};
  }

  if (req.verb == Verb::kCreate) {
    if (!take_str(obj, "sketch", &req.sketch)) {
      return ParseError{kErrField, "sketch must be a string"};
    }
    if (!take_str(obj, "backend", &req.backend)) {
      return ParseError{kErrField, "backend must be a string"};
    }
    long long v = 0;
    if (!take_int(obj, "seed", 0, (1LL << 53), &v, &err)) {
      return ParseError{kErrField, err};
    }
    if (obj.count("seed") != 0) req.seed = static_cast<std::uint64_t>(v);
    v = req.initial;
    if (!take_int(obj, "initial", 0, 1000, &v, &err)) {
      return ParseError{kErrField, err};
    }
    req.initial = static_cast<int>(v);
    v = req.pairs;
    if (!take_int(obj, "pairs", 1, 100, &v, &err)) {
      return ParseError{kErrField, err};
    }
    req.pairs = static_cast<int>(v);
    v = req.max_iters;
    if (!take_int(obj, "max_iters", 1, 1000000, &v, &err)) {
      return ParseError{kErrField, err};
    }
    req.max_iters = static_cast<int>(v);
  } else if (req.verb == Verb::kNext) {
    long long v = 0;
    if (!take_int(obj, "wait_ms", 0, 600000, &v, &err)) {
      return ParseError{kErrField, err};
    }
    req.wait_ms = static_cast<int>(v);
  } else if (req.verb == Verb::kAnswer) {
    long long v = -1;
    if (!take_int(obj, "index", 0, (1LL << 40), &v, &err) ||
        obj.count("index") == 0) {
      return ParseError{kErrIndex,
                        err.empty() ? "missing integer field 'index'" : err};
    }
    req.index = static_cast<long>(v);
    std::string answer;
    if (!take_str(obj, "answer", &answer) || answer.empty()) {
      return ParseError{kErrAnswer, "missing string field 'answer'"};
    }
    const std::optional<oracle::Preference> p = parse_preference(answer);
    if (!p) {
      return ParseError{kErrAnswer,
                        "answer must be 'first', 'second' or 'tie'"};
    }
    req.answer = *p;
  }
  return req;
}

std::string render_request(const Request& req) {
  JsonWriter w;
  w.str("verb", verb_name(req.verb));
  if (!req.session.empty()) w.str("session", req.session);
  switch (req.verb) {
    case Verb::kCreate:
      if (!req.sketch.empty()) w.str("sketch", req.sketch);
      w.str("backend", req.backend);
      w.integer("seed", static_cast<long long>(req.seed));
      w.integer("initial", req.initial);
      w.integer("pairs", req.pairs);
      w.integer("max_iters", req.max_iters);
      break;
    case Verb::kNext:
      if (req.wait_ms > 0) w.integer("wait_ms", req.wait_ms);
      break;
    case Verb::kAnswer:
      w.integer("index", req.index);
      w.str("answer", preference_name(req.answer));
      break;
    case Verb::kInspect:
    case Verb::kEvict:
    case Verb::kShutdown:
      break;
  }
  return w.done();
}

void JsonWriter::key(std::string_view k) {
  if (!first_) out_ += ',';
  first_ = false;
  out_ += '"';
  out_ += obs::json_escape(k);
  out_ += "\":";
}

JsonWriter& JsonWriter::str(std::string_view k, std::string_view value) {
  key(k);
  out_ += '"';
  out_ += obs::json_escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::integer(std::string_view k, long long value) {
  key(k);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::num(std::string_view k, double value) {
  key(k);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::boolean(std::string_view k, bool value) {
  key(k);
  out_ += value ? "true" : "false";
  return *this;
}

std::string JsonWriter::done() {
  out_ += '}';
  return std::move(out_);
}

std::string error_response(std::string_view code, std::string_view message) {
  JsonWriter w;
  w.integer("v", kProtocolVersion);
  w.boolean("ok", false);
  w.str("code", code);
  w.str("error", message);
  return w.done();
}

JsonWriter ok_response(Verb verb) {
  JsonWriter w;
  w.integer("v", kProtocolVersion);
  w.boolean("ok", true);
  w.str("verb", verb_name(verb));
  return w;
}

}  // namespace compsynth::serve
