// Negative control for the thread-safety build (COMPSYNTH_THREAD_SAFETY):
// a deliberately missing lock acquisition that Clang's -Wthread-safety MUST
// reject. tools/thread_safety_negative_test.cmake compiles this TU twice —
// once as-is (the compile must FAIL) and once with -DTSN_FIXED (the compile
// must SUCCEED) — so the ctest proves the annotations are actually enforced
// and have not rotted into no-ops behind a macro or flag change.
//
// This file is never linked into any target; it exists only for that
// compile check. It must stay minimal (util-only includes) so the check is
// a fast -fsyntax-only run.
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace compsynth::tsn {

class Account {
 public:
  void deposit(long amount) EXCLUDES(mu_) {
    const util::MutexLock lock(mu_);
    balance_ += amount;
  }

  long balance() const EXCLUDES(mu_) {
#ifdef TSN_FIXED
    const util::MutexLock lock(mu_);
#endif
    // Without TSN_FIXED this reads a GUARDED_BY field with no lock held —
    // the exact bug class the analysis exists to catch.
    return balance_;
  }

 private:
  mutable util::Mutex mu_;
  long balance_ GUARDED_BY(mu_) = 0;
};

// Odr-use the methods so the analysis definitely visits them.
long exercise() {
  Account account;
  account.deposit(1);
  return account.balance();
}

}  // namespace compsynth::tsn
