// Differential tests for the compiled sketch evaluator (sketch/compile.h):
// the tape must agree with the tree interpreter bit-for-bit — values,
// division-by-zero throws, kChoice clamping, laziness of untaken branches,
// and ill-typed-node errors — on every library sketch and on fuzzer-generated
// ASTs (in the spirit of the klee-mc ExprXChkBuilder oracle pattern, where a
// fast builder is cross-checked against a reference builder on every query).
// Also proves GridFinder's backends interchangeable: tree vs compiled,
// sequential vs parallel, produce identical version spaces.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "oracle/ground_truth.h"
#include "pref/graph.h"
#include "sketch/compile.h"
#include "sketch/eval.h"
#include "sketch/library.h"
#include "sketch/parser.h"
#include "sketch/printer.h"
#include "solver/grid_finder.h"
#include "util/rng.h"

namespace compsynth::sketch {
namespace {

// Bitwise double equality: NaN == NaN, +0.0 != -0.0. The compiled tape runs
// the same double operations in the same order as the interpreter, so
// anything weaker than this would mask a real divergence.
bool bit_equal(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  return ba == bb;
}

// Evaluates an expression through both evaluators and asserts identical
// outcomes: same value (bitwise) or same EvalError message.
void expect_equivalent(const Expr& body, const CompiledSketch& compiled,
                       std::span<const double> metrics,
                       std::span<const double> holes,
                       const std::string& context) {
  bool tree_threw = false, tape_threw = false;
  std::string tree_err, tape_err;
  double tree_val = 0, tape_val = 0;
  try {
    tree_val = eval_numeric(body, metrics, holes);
  } catch (const EvalError& e) {
    tree_threw = true;
    tree_err = e.what();
  }
  try {
    tape_val = compiled.eval(metrics, holes);
  } catch (const EvalError& e) {
    tape_threw = true;
    tape_err = e.what();
  }
  ASSERT_EQ(tree_threw, tape_threw) << context;
  if (tree_threw) {
    EXPECT_EQ(tree_err, tape_err) << context;
  } else {
    EXPECT_TRUE(bit_equal(tree_val, tape_val))
        << context << "\n tree: " << tree_val << "\n tape: " << tape_val;
  }
}

// --- Library sketches --------------------------------------------------------

const Sketch& library_sketch(int which) {
  switch (which) {
    case 0: return swan_sketch();
    case 1: return swan_multi_region_sketch();
    case 2: return swan_form_sketch();
    case 3: return swan_fair_sketch();
    case 4: return swan_priority_sketch();
    case 5: return abr_qoe_sketch();
    default: return homenet_sketch();
  }
}

class LibrarySketchCompile : public ::testing::TestWithParam<int> {};

TEST_P(LibrarySketchCompile, MatchesTreeInterpreterEverywhere) {
  const Sketch& sk = library_sketch(GetParam());
  const CompiledSketch compiled(sk);
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 11);

  for (int probe = 0; probe < 300; ++probe) {
    HoleAssignment a;
    for (const auto& h : sk.holes()) {
      a.index.push_back(rng.uniform_int(0, h.count - 1));
    }
    const std::vector<double> holes = sk.hole_values(a);
    std::vector<double> point;
    for (const auto& m : sk.metrics()) {
      // Mix interior points with the boundary values where piecewise
      // objectives switch regions.
      point.push_back(rng.bernoulli(0.25) ? (rng.bernoulli(0.5) ? m.lo : m.hi)
                                          : rng.uniform_real(m.lo, m.hi));
    }
    expect_equivalent(*sk.body(), compiled, point, holes, sk.name());
  }
}

TEST_P(LibrarySketchCompile, EvalManyMatchesEvalPerScenario) {
  const Sketch& sk = library_sketch(GetParam());
  const CompiledSketch compiled(sk);
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 24593 + 29);

  HoleAssignment a;
  for (const auto& h : sk.holes()) a.index.push_back(rng.uniform_int(0, h.count - 1));
  const std::vector<double> holes = sk.hole_values(a);

  const std::size_t width = sk.metrics().size();
  const std::size_t n = 64;
  std::vector<double> flat(n * width);
  for (double& v : flat) v = rng.uniform_real(0, 10);
  std::vector<double> batched(n);
  compiled.eval_many(flat, holes, batched);
  for (std::size_t i = 0; i < n; ++i) {
    const double one = compiled.eval(
        std::span<const double>(flat).subspan(i * width, width), holes);
    EXPECT_TRUE(bit_equal(one, batched[i])) << sk.name() << " scenario " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllLibrarySketches, LibrarySketchCompile,
                         ::testing::Range(0, 7));

// --- Targeted semantics ------------------------------------------------------

TEST(CompiledSketch, DivisionByZeroThrowsLikeInterpreter) {
  const Sketch sk = parse_sketch(
      "sketch s(m in [0, 10]) { 1 / m }");
  const CompiledSketch compiled(sk);
  const std::vector<double> holes;
  EXPECT_THROW(compiled.eval(std::vector<double>{0.0}, holes), EvalError);
  EXPECT_TRUE(bit_equal(compiled.eval(std::vector<double>{2.0}, holes), 0.5));
}

TEST(CompiledSketch, UntakenBranchesAreNotEvaluated) {
  // The tree interpreter only evaluates the taken Ite branch; a division by
  // zero hiding in the other branch must not throw from the tape either.
  const Sketch sk = parse_sketch(
      "sketch s(m in [0, 10]) { if m > 0 then 1 / m else -1 }");
  const CompiledSketch compiled(sk);
  const std::vector<double> holes;
  EXPECT_TRUE(bit_equal(compiled.eval(std::vector<double>{0.0}, holes), -1.0));
  EXPECT_TRUE(bit_equal(compiled.eval(std::vector<double>{4.0}, holes), 0.25));
}

TEST(CompiledSketch, ChoiceClampsAndStaysLazy) {
  // Raw tape over: choose h0 { 1/m, 7, m }. Selector values are clamped to
  // [0, 2] exactly like the interpreter, and unselected alternatives are
  // never executed (1/m with m = 0 only throws when alternative 0 is picked).
  const ExprPtr body =
      choice(0, {binary(BinOp::kDiv, constant(1), metric(0)), constant(7),
                 metric(0)});
  const CompiledSketch compiled(*body, /*metric_count=*/1, /*hole_count=*/1);
  const std::vector<double> m0{0.0};
  for (const double sel : {-3.0, -0.4, 0.0}) {
    SCOPED_TRACE(sel);
    EXPECT_THROW(compiled.eval(m0, std::vector<double>{sel}), EvalError);
  }
  for (const double sel : {1.0, 1.4}) {
    SCOPED_TRACE(sel);
    EXPECT_TRUE(bit_equal(compiled.eval(m0, std::vector<double>{sel}), 7.0));
  }
  for (const double sel : {2.0, 5.0, 99.0}) {
    SCOPED_TRACE(sel);
    EXPECT_TRUE(bit_equal(compiled.eval(m0, std::vector<double>{sel}), 0.0));
  }
  // Cross-check clamping against the interpreter for a spread of selectors.
  for (double sel = -4.0; sel <= 6.0; sel += 0.25) {
    expect_equivalent(*body, compiled, std::vector<double>{3.0},
                      std::vector<double>{sel}, "choice selector");
  }
}

TEST(CompiledSketch, ArityErrorsMatchEvalWithValues) {
  const Sketch& sk = swan_sketch();
  const CompiledSketch compiled(sk);
  const std::vector<double> good_holes = sk.hole_values(swan_target());
  const std::vector<double> good_point{5.0, 50.0};

  const auto message_of = [](auto&& fn) -> std::string {
    try {
      fn();
    } catch (const EvalError& e) {
      return e.what();
    }
    return "";
  };
  const std::vector<double> short_point{5.0};
  const std::vector<double> short_holes{1.0};
  EXPECT_EQ(message_of([&] { compiled.eval(short_point, good_holes); }),
            message_of([&] { eval_with_values(sk, good_holes, short_point); }));
  EXPECT_EQ(message_of([&] { compiled.eval(good_point, short_holes); }),
            message_of([&] { eval_with_values(sk, short_holes, good_point); }));
}

TEST(CompiledSketch, ConstantFoldingShrinksTheTapeWithoutChangingResults) {
  const Sketch folded = parse_sketch(
      "sketch s(m in [0, 10]) { m + (2 * 3 + min(4, 1)) }");
  const CompiledSketch compiled(folded);
  // The whole parenthesized subtree folds to one constant: push m, push 7, add.
  EXPECT_EQ(compiled.tape().size(), 3u);
  EXPECT_TRUE(bit_equal(compiled.eval(std::vector<double>{2.0}, {}), 9.0));

  // A constant division by zero must NOT fold: it still throws when reached
  // and still doesn't when the branch is skipped.
  const Sketch guarded = parse_sketch(
      "sketch s(m in [0, 10]) { if m > 5 then 1 / 0 else m }");
  const CompiledSketch gc(guarded);
  EXPECT_TRUE(bit_equal(gc.eval(std::vector<double>{1.0}, {}), 1.0));
  EXPECT_THROW(gc.eval(std::vector<double>{6.0}, {}), EvalError);
}

// --- Fuzzing: well-typed sketches -------------------------------------------
//
// Random well-typed expression generator. Unlike the one in fuzz_test.cpp,
// divisors may be arbitrary subexpressions (so division by zero genuinely
// happens at runtime and the throw paths get cross-checked).

class ExprGen {
 public:
  ExprGen(util::Rng& rng, std::size_t metrics, std::size_t holes)
      : rng_(rng), metrics_(metrics), holes_(holes) {}

  ExprPtr numeric(int depth) {
    if (depth <= 0) return leaf();
    switch (rng_.uniform_int(0, 10)) {
      case 0:
      case 1:
        return leaf();
      case 2:
        return neg(numeric(depth - 1));
      case 3:
        return add(numeric(depth - 1), numeric(depth - 1));
      case 4:
        return sub(numeric(depth - 1), numeric(depth - 1));
      case 5:
        return mul(numeric(depth - 1), numeric(depth - 1));
      case 6:
        return binary(rng_.bernoulli(0.5) ? BinOp::kMin : BinOp::kMax,
                      numeric(depth - 1), numeric(depth - 1));
      case 7:
        // Unrestricted divisor: zero can and does happen at runtime.
        return binary(BinOp::kDiv, numeric(depth - 1), numeric(depth - 1));
      case 8:
        return ite(boolean(depth - 1), numeric(depth - 1), numeric(depth - 1));
      default: {
        if (holes_ == 0) return leaf();
        std::vector<ExprPtr> alts{numeric(depth - 1), numeric(depth - 1),
                                  numeric(depth - 1)};
        return choice(0, std::move(alts));
      }
    }
  }

  ExprPtr boolean(int depth) {
    if (depth <= 0) return compare(random_cmp(), leaf(), leaf());
    switch (rng_.uniform_int(0, 3)) {
      case 0:
        return compare(random_cmp(), numeric(depth - 1), numeric(depth - 1));
      case 1:
        return bool_binary(rng_.bernoulli(0.5) ? BoolOp::kAnd : BoolOp::kOr,
                           boolean(depth - 1), boolean(depth - 1));
      case 2:
        return logical_not(boolean(depth - 1));
      default:
        return bool_constant(rng_.bernoulli(0.5));
    }
  }

 protected:
  ExprPtr leaf() {
    const auto kind = rng_.uniform_int(0, 2);
    if (kind == 0 && metrics_ > 0) return metric(rng_.index(metrics_));
    if (kind == 1 && holes_ > 0) return hole(rng_.index(holes_));
    // Small integer grid; includes 0, so constant subtrees can hit the
    // division-by-zero fold guard too.
    return constant(static_cast<double>(rng_.uniform_int(-8, 8)) / 2.0);
  }

  CmpOp random_cmp() {
    switch (rng_.uniform_int(0, 5)) {
      case 0: return CmpOp::kLt;
      case 1: return CmpOp::kLe;
      case 2: return CmpOp::kGt;
      case 3: return CmpOp::kGe;
      case 4: return CmpOp::kEq;
      default: return CmpOp::kNe;
    }
  }

  util::Rng& rng_;
  std::size_t metrics_;
  std::size_t holes_;
};

Sketch random_sketch(util::Rng& rng) {
  std::vector<MetricSpec> metrics;
  const auto n_metrics = static_cast<std::size_t>(rng.uniform_int(1, 3));
  for (std::size_t i = 0; i < n_metrics; ++i) {
    metrics.push_back(MetricSpec{"m" + std::to_string(i), -10, 10});
  }
  std::vector<HoleSpec> holes;
  holes.push_back(HoleSpec{"sel", 0, 1, 3});  // choice selector
  holes.push_back(HoleSpec{"w", -2, 0.5, 9});
  ExprGen gen(rng, n_metrics, holes.size());
  return Sketch("fuzz", std::move(metrics), std::move(holes),
                gen.numeric(/*depth=*/5));
}

// 50 params x 5 sketches x 48 probes = 12,000 (sketch, holes, scenario)
// triples through both evaluators.
class CompiledFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CompiledFuzz, AgreesWithTreeInterpreter) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 12289 + 7);
  for (int round = 0; round < 5; ++round) {
    const Sketch sk = random_sketch(rng);
    const CompiledSketch compiled(sk);
    for (int probe = 0; probe < 48; ++probe) {
      HoleAssignment a;
      for (const auto& h : sk.holes()) {
        a.index.push_back(rng.uniform_int(0, h.count - 1));
      }
      const std::vector<double> holes = sk.hole_values(a);
      std::vector<double> point;
      for (std::size_t m = 0; m < sk.metrics().size(); ++m) {
        // Quarter-integer grid makes zero divisors common.
        point.push_back(static_cast<double>(rng.uniform_int(-12, 12)) / 4.0);
      }
      expect_equivalent(*sk.body(), compiled, point, holes, print_sketch(sk));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, CompiledFuzz, ::testing::Range(0, 50));

// --- Fuzzing: ill-typed trees ------------------------------------------------
//
// The Sketch constructor typechecks, but eval_numeric/eval_bool are defined
// on bare Exprs and throw when an ill-typed node is *reached*. The tape must
// raise the identical error at the identical points — and stay silent when
// the bad node sits in an untaken branch.

class IllTypedGen : public ExprGen {
 public:
  using ExprGen::ExprGen;

  ExprPtr numeric_maybe_bad(int depth) {
    // ~12% of positions hold a node of the wrong type.
    if (rng_.uniform_int(0, 7) == 0) return boolean_strict(depth - 1);
    if (depth <= 0) return leaf();
    switch (rng_.uniform_int(0, 5)) {
      case 0: return leaf();
      case 1: return neg(numeric_maybe_bad(depth - 1));
      case 2:
        return add(numeric_maybe_bad(depth - 1), numeric_maybe_bad(depth - 1));
      case 3:
        return binary(BinOp::kDiv, numeric_maybe_bad(depth - 1),
                      numeric_maybe_bad(depth - 1));
      case 4:
        return ite(boolean_maybe_bad(depth - 1), numeric_maybe_bad(depth - 1),
                   numeric_maybe_bad(depth - 1));
      default: {
        std::vector<ExprPtr> alts{numeric_maybe_bad(depth - 1),
                                  numeric_maybe_bad(depth - 1),
                                  numeric_maybe_bad(depth - 1)};
        return choice(0, std::move(alts));
      }
    }
  }

  ExprPtr boolean_maybe_bad(int depth) {
    if (rng_.uniform_int(0, 7) == 0) return numeric(std::max(0, depth - 1));
    if (depth <= 0) return compare(random_cmp(), leaf(), leaf());
    switch (rng_.uniform_int(0, 2)) {
      case 0:
        return compare(random_cmp(), numeric_maybe_bad(depth - 1),
                       numeric_maybe_bad(depth - 1));
      case 1:
        return bool_binary(rng_.bernoulli(0.5) ? BoolOp::kAnd : BoolOp::kOr,
                           boolean_maybe_bad(depth - 1),
                           boolean_maybe_bad(depth - 1));
      default:
        return logical_not(boolean_maybe_bad(depth - 1));
    }
  }

 private:
  ExprPtr boolean_strict(int depth) { return boolean(std::max(0, depth)); }
};

// 50 params x 4 trees x 30 probes = 6,000 additional triples exercising the
// error paths.
class IllTypedFuzz : public ::testing::TestWithParam<int> {};

TEST_P(IllTypedFuzz, ErrorPathsMatchTreeInterpreter) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 49157 + 13);
  constexpr std::size_t kMetrics = 2, kHoles = 2;
  for (int round = 0; round < 4; ++round) {
    IllTypedGen gen(rng, kMetrics, kHoles);
    const ExprPtr body = gen.numeric_maybe_bad(4);
    const CompiledSketch compiled(*body, kMetrics, kHoles);
    for (int probe = 0; probe < 30; ++probe) {
      const std::vector<double> point{
          static_cast<double>(rng.uniform_int(-8, 8)) / 2.0,
          static_cast<double>(rng.uniform_int(-8, 8)) / 2.0};
      const std::vector<double> holes{
          static_cast<double>(rng.uniform_int(0, 2)),
          static_cast<double>(rng.uniform_int(-4, 4)) / 2.0};
      expect_equivalent(*body, compiled, point, holes, "ill-typed fuzz");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, IllTypedFuzz, ::testing::Range(0, 50));

// --- Batched lanes -----------------------------------------------------------
//
// Per-lane differential oracle for BatchTape (docs/EVALUATOR.md): up to
// kBatchLaneWidth candidates evaluated under EVERY supported lane ISA, each
// real lane required to reproduce the tree interpreter's outcome for its
// candidate exactly — bitwise value or the identical EvalError message, with
// raising lanes poisoning only themselves.

// Restores the dispatched lane kernel when a test that forces ISAs exits.
struct IsaRestore {
  LaneIsa saved = active_lane_isa();
  ~IsaRestore() { set_active_lane_isa(saved); }
};

std::vector<LaneIsa> supported_isas() {
  std::vector<LaneIsa> isas{LaneIsa::kScalar};
  if (lane_isa_supported(LaneIsa::kAvx2)) isas.push_back(LaneIsa::kAvx2);
  return isas;
}

void expect_lanes_equivalent(const Expr& body, const BatchTape& tape,
                             std::span<const double> metrics,
                             const std::vector<std::vector<double>>& lanes,
                             const std::string& context) {
  constexpr std::size_t W = BatchTape::kLaneWidth;
  ASSERT_FALSE(lanes.empty());
  ASSERT_LE(lanes.size(), W);
  const std::size_t n_holes = tape.hole_count();
  // SoA staging with the documented pad rule: spare lanes copy the last real
  // candidate and their outputs are ignored.
  std::vector<double> soa(n_holes * W);
  for (std::size_t l = 0; l < W; ++l) {
    const auto& src = lanes[std::min(l, lanes.size() - 1)];
    ASSERT_EQ(src.size(), n_holes) << context;
    for (std::size_t h = 0; h < n_holes; ++h) soa[h * W + l] = src[h];
  }

  IsaRestore restore;
  for (const LaneIsa isa : supported_isas()) {
    ASSERT_TRUE(set_active_lane_isa(isa));
    std::array<double, W> out{};
    std::array<LaneError, W> err{};
    tape.eval_lanes(metrics, soa, out.data(), err.data());
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      const std::string where = context + " [isa " + lane_isa_name(isa) +
                                ", lane " + std::to_string(l) + "]";
      bool tree_threw = false;
      std::string tree_err;
      double tree_val = 0;
      try {
        tree_val = eval_numeric(body, metrics, lanes[l]);
      } catch (const EvalError& e) {
        tree_threw = true;
        tree_err = e.what();
      }
      if (tree_threw) {
        ASSERT_NE(err[l], LaneError::kNone) << where;
        EXPECT_EQ(std::string(lane_error_message(err[l])), tree_err) << where;
      } else {
        ASSERT_EQ(err[l], LaneError::kNone) << where;
        EXPECT_TRUE(bit_equal(out[l], tree_val))
            << where << "\n tree: " << tree_val << "\n lane: " << out[l];
      }
    }
  }
}

TEST(BatchTape, MixedLaneDivZeroPoisonsOnlyItsLane) {
  // 1 / h: lanes whose hole is zero must poison with the division-by-zero
  // error while their siblings keep bit-exact quotients.
  const ExprPtr body = binary(BinOp::kDiv, constant(1), hole(0));
  const BatchTape tape(*body, /*metric_count=*/0, /*hole_count=*/1);
  std::vector<std::vector<double>> lanes;
  for (const double h : {0.0, 1.0, 2.0, 0.0, 4.0, -2.0, 0.0, 8.0}) {
    lanes.push_back({h});
  }
  expect_lanes_equivalent(*body, tape, {}, lanes, "1/h mixed zeros");
}

TEST(BatchTape, MixedLaneIllTypedRaisePoisonsOnlyItsLane) {
  // A boolean node in numeric position raises only when reached: lanes whose
  // selector routes through the bad branch poison with the exact ill-typed
  // message, siblings keep evaluating the healthy branch.
  const ExprPtr body = ite(compare(CmpOp::kGt, hole(0), constant(0)),
                           bool_constant(true),  // ill-typed when taken
                           metric(0));
  const BatchTape tape(*body, /*metric_count=*/1, /*hole_count=*/1);
  std::vector<std::vector<double>> lanes;
  for (const double h : {1.0, -1.0, 0.0, 3.0, -2.0, 0.5, 0.0, 2.0}) {
    lanes.push_back({h});
  }
  expect_lanes_equivalent(*body, tape, std::vector<double>{42.0}, lanes,
                          "ill-typed branch per lane");
}

TEST(BatchTape, NaNMinMaxAsymmetryPerLane) {
  // std::min/std::max return the FIRST operand when the comparison is false,
  // so a NaN second operand is dropped while a NaN first operand propagates.
  // Every lane must reproduce that asymmetry bitwise, in both operand orders
  // and with the NaN arriving via either the hole or the metric.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<std::vector<double>> lanes;
  for (const double h : {nan, 1.0, -3.0, nan, 0.0, 7.0, nan, 2.0}) {
    lanes.push_back({h});
  }
  for (const BinOp op : {BinOp::kMin, BinOp::kMax}) {
    for (const bool hole_first : {true, false}) {
      const ExprPtr body = hole_first ? binary(op, hole(0), metric(0))
                                      : binary(op, metric(0), hole(0));
      const BatchTape tape(*body, /*metric_count=*/1, /*hole_count=*/1);
      for (const double m : {nan, 4.0}) {
        expect_lanes_equivalent(*body, tape, std::vector<double>{m}, lanes,
                                "min/max NaN asymmetry");
      }
    }
  }
}

TEST(BatchTape, TailGroupNarrowerThanLaneWidth) {
  // Fewer real candidates than lanes: the pad lanes copy the last real
  // candidate — which here raises — and their outputs are ignored, while the
  // three real lanes (one of them also raising) come back exact.
  const ExprPtr body = binary(BinOp::kDiv, metric(0), hole(0));
  const BatchTape tape(*body, /*metric_count=*/1, /*hole_count=*/1);
  const std::vector<std::vector<double>> lanes{{2.0}, {-4.0}, {0.0}};
  expect_lanes_equivalent(*body, tape, std::vector<double>{6.0}, lanes,
                          "tail group");
}

// 50 params x 3 sketches x 4 groups x 8 lanes of fuzzer-generated candidates
// through every supported lane ISA.
class BatchFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BatchFuzz, LanesAgreeWithTreeInterpreter) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 40961 + 3);
  for (int round = 0; round < 3; ++round) {
    const Sketch sk = random_sketch(rng);
    const BatchTape tape(sk);
    for (int group = 0; group < 4; ++group) {
      std::vector<double> point;
      for (std::size_t m = 0; m < sk.metrics().size(); ++m) {
        // Quarter-integer grid makes zero divisors common.
        point.push_back(static_cast<double>(rng.uniform_int(-12, 12)) / 4.0);
      }
      std::vector<std::vector<double>> lanes;
      for (std::size_t l = 0; l < BatchTape::kLaneWidth; ++l) {
        HoleAssignment a;
        for (const auto& h : sk.holes()) {
          a.index.push_back(rng.uniform_int(0, h.count - 1));
        }
        lanes.push_back(sk.hole_values(a));
      }
      expect_lanes_equivalent(*sk.body(), tape, point, lanes,
                              print_sketch(sk));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, BatchFuzz, ::testing::Range(0, 50));

// Ill-typed trees through the lanes: mixed raising/healthy candidates in one
// group, cross-checked against the tree interpreter's reachable-only errors.
class IllTypedBatchFuzz : public ::testing::TestWithParam<int> {};

TEST_P(IllTypedBatchFuzz, LaneErrorPathsMatchTreeInterpreter) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 17);
  constexpr std::size_t kMetrics = 2, kHoles = 2;
  for (int round = 0; round < 3; ++round) {
    IllTypedGen gen(rng, kMetrics, kHoles);
    const ExprPtr body = gen.numeric_maybe_bad(4);
    const BatchTape tape(*body, kMetrics, kHoles);
    for (int group = 0; group < 4; ++group) {
      const std::vector<double> point{
          static_cast<double>(rng.uniform_int(-8, 8)) / 2.0,
          static_cast<double>(rng.uniform_int(-8, 8)) / 2.0};
      std::vector<std::vector<double>> lanes;
      for (std::size_t l = 0; l < BatchTape::kLaneWidth; ++l) {
        lanes.push_back({static_cast<double>(rng.uniform_int(0, 2)),
                         static_cast<double>(rng.uniform_int(-4, 4)) / 2.0});
      }
      expect_lanes_equivalent(*body, tape, point, lanes, "ill-typed lanes");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, IllTypedBatchFuzz, ::testing::Range(0, 50));

}  // namespace
}  // namespace compsynth::sketch

// --- GridFinder backend equivalence -----------------------------------------

namespace compsynth::solver {
namespace {

// Interns `n_new` random scenarios into `graph` and records the oracle's
// answer for every pair involving a new scenario — the way the real
// interaction loop grows G (append-only: existing edges keep their indices).
void grow_swan_graph(pref::PreferenceGraph& graph,
                     std::vector<pref::VertexId>& vertices, int n_new,
                     oracle::GroundTruthOracle& user, util::Rng& rng) {
  const sketch::Sketch& sk = sketch::swan_sketch();
  const std::size_t old_count = vertices.size();
  for (int i = 0; i < n_new; ++i) {
    pref::Scenario s;
    for (const auto& m : sk.metrics()) {
      s.metrics.push_back(rng.uniform_real(m.lo, m.hi));
    }
    vertices.push_back(graph.intern(s));
  }
  for (std::size_t j = old_count; j < vertices.size(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      const auto pref = user.compare(graph.scenario(vertices[i]),
                                     graph.scenario(vertices[j]));
      if (pref == oracle::Preference::kFirst) {
        graph.add_preference(vertices[i], vertices[j]);
      } else if (pref == oracle::Preference::kSecond) {
        graph.add_preference(vertices[j], vertices[i]);
      } else {
        graph.add_tie(vertices[i], vertices[j]);
      }
    }
  }
}

// A small but non-trivial preference graph over the SWAN sketch, answered by
// the Fig. 2b ground-truth target.
pref::PreferenceGraph swan_workload_graph(int n_scenarios, std::uint64_t seed) {
  oracle::GroundTruthOracle user(sketch::swan_sketch(), sketch::swan_target());
  util::Rng rng(seed);
  pref::PreferenceGraph graph;
  std::vector<pref::VertexId> vertices;
  grow_swan_graph(graph, vertices, n_scenarios, user, rng);
  return graph;
}

std::vector<sketch::HoleAssignment> assignments_of(const GridFinder& finder) {
  std::vector<sketch::HoleAssignment> out;
  out.reserve(finder.survivors().size());
  for (const Survivor& s : finder.survivors()) out.push_back(s.assignment);
  return out;
}

GridFinder make_finder(EvalBackend backend, int threads) {
  GridFinderConfig config;
  config.eval_backend = backend;
  config.threads = threads;
  return GridFinder(sketch::swan_sketch(), config);
}

// Restores the dispatched lane kernel when a test that forces ISAs exits.
struct IsaOverride {
  sketch::LaneIsa saved = sketch::active_lane_isa();
  explicit IsaOverride(sketch::LaneIsa isa) {
    EXPECT_TRUE(sketch::set_active_lane_isa(isa));
  }
  ~IsaOverride() { sketch::set_active_lane_isa(saved); }
};

TEST(GridFinderBackends, IdenticalVersionSpacesAcrossBackendsAndThreads) {
  const pref::PreferenceGraph graph = swan_workload_graph(10, 77);

  GridFinder tree = make_finder(EvalBackend::kTree, 1);
  GridFinder compiled_seq = make_finder(EvalBackend::kCompiled, 1);
  GridFinder compiled_par = make_finder(EvalBackend::kCompiled, 4);
  GridFinder batch_seq = make_finder(EvalBackend::kBatch, 1);
  GridFinder batch_par = make_finder(EvalBackend::kBatch, 4);
  tree.sync(graph);
  compiled_seq.sync(graph);
  compiled_par.sync(graph);
  batch_seq.sync(graph);
  batch_par.sync(graph);

  const auto reference = assignments_of(tree);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(assignments_of(compiled_seq), reference);
  EXPECT_EQ(assignments_of(compiled_par), reference);
  EXPECT_EQ(assignments_of(batch_seq), reference);
  EXPECT_EQ(assignments_of(batch_par), reference);

  // The batch backend must land on the same version space under every lane
  // kernel the host supports — the survivors are the user-visible product of
  // the SIMD path, so this is the dispatch-equivalence assertion.
  for (const sketch::LaneIsa isa :
       {sketch::LaneIsa::kScalar, sketch::LaneIsa::kAvx2}) {
    if (!sketch::lane_isa_supported(isa)) continue;
    IsaOverride force(isa);
    GridFinder batch_isa = make_finder(EvalBackend::kBatch, 1);
    batch_isa.sync(graph);
    EXPECT_EQ(assignments_of(batch_isa), reference)
        << sketch::lane_isa_name(isa);
  }
}

TEST(GridFinderBackends, BatchHandlesGridNotDivisibleByLaneWidth) {
  // 13 candidates: one full 8-wide lane group plus a 5-wide tail. The batch
  // backend must produce exactly the tree backend's survivors.
  const sketch::Sketch sk = sketch::parse_sketch(
      "sketch tail(m in [0, 10]) {"
      "  hole a in grid(0, 3, 13);"
      "  if m > 5 then a * m else a + m"
      "}");
  ASSERT_NE(static_cast<std::size_t>(13) % sketch::kBatchLaneWidth, 0u);

  sketch::HoleAssignment target;
  target.index.push_back(7);
  oracle::GroundTruthOracle user(sk, target);
  util::Rng rng(5);
  pref::PreferenceGraph graph;
  std::vector<pref::VertexId> vertices;
  for (int i = 0; i < 6; ++i) {
    pref::Scenario s;
    s.metrics.push_back(rng.uniform_real(0, 10));
    vertices.push_back(graph.intern(s));
  }
  for (std::size_t j = 0; j < vertices.size(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      const auto pref = user.compare(graph.scenario(vertices[i]),
                                     graph.scenario(vertices[j]));
      if (pref == oracle::Preference::kFirst) {
        graph.add_preference(vertices[i], vertices[j]);
      } else if (pref == oracle::Preference::kSecond) {
        graph.add_preference(vertices[j], vertices[i]);
      } else {
        graph.add_tie(vertices[i], vertices[j]);
      }
    }
  }

  GridFinderConfig tree_config;
  tree_config.eval_backend = EvalBackend::kTree;
  tree_config.threads = 1;
  GridFinder tree(sk, tree_config);
  GridFinderConfig batch_config;
  batch_config.eval_backend = EvalBackend::kBatch;
  batch_config.threads = 1;
  GridFinder batch(sk, batch_config);
  tree.sync(graph);
  batch.sync(graph);

  ASSERT_FALSE(assignments_of(tree).empty());
  EXPECT_EQ(assignments_of(batch), assignments_of(tree));
}

TEST(GridFinderBackends, IncrementalFilterMatchesFullRebuild) {
  // Sync on a prefix of the answers, then extend the graph in place: the
  // incremental filter path (memoized vertex values, new edges only) must
  // land on exactly the version space a from-scratch rebuild computes.
  oracle::GroundTruthOracle user(sketch::swan_sketch(), sketch::swan_target());
  util::Rng rng(31);
  pref::PreferenceGraph graph;
  std::vector<pref::VertexId> vertices;
  grow_swan_graph(graph, vertices, 6, user, rng);

  GridFinder incremental = make_finder(EvalBackend::kCompiled, 4);
  GridFinder batch_incremental = make_finder(EvalBackend::kBatch, 4);
  incremental.sync(graph);
  batch_incremental.sync(graph);
  const std::size_t after_prefix = incremental.version_space_size();

  grow_swan_graph(graph, vertices, 6, user, rng);
  incremental.sync(graph);
  batch_incremental.sync(graph);

  GridFinder fresh = make_finder(EvalBackend::kCompiled, 1);
  fresh.sync(graph);

  EXPECT_LE(incremental.version_space_size(), after_prefix);
  EXPECT_EQ(assignments_of(incremental), assignments_of(fresh));
  // The sharded batch filter (memoized lanes, new constraints only) must land
  // on the identical version space.
  EXPECT_EQ(assignments_of(batch_incremental), assignments_of(fresh));
}

}  // namespace
}  // namespace compsynth::solver
