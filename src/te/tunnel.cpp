#include "te/tunnel.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

namespace compsynth::te {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Dijkstra over latency with per-call banned links/nodes (for Yen spurs).
Tunnel dijkstra(const Topology& topo, NodeId src, NodeId dst,
                const std::set<LinkId>& banned_links,
                const std::set<NodeId>& banned_nodes) {
  const std::size_t n = topo.node_count();
  std::vector<double> dist(n, kInf);
  std::vector<LinkId> via(n, static_cast<LinkId>(-1));
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;

  if (banned_nodes.contains(src) || banned_nodes.contains(dst)) return {};
  dist[src] = 0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    if (v == dst) break;
    for (const LinkId lid : topo.out_links(v)) {
      if (banned_links.contains(lid)) continue;
      const Link& l = topo.link(lid);
      if (banned_nodes.contains(l.to)) continue;
      const double nd = d + l.latency_ms;
      if (nd < dist[l.to]) {
        dist[l.to] = nd;
        via[l.to] = lid;
        heap.emplace(nd, l.to);
      }
    }
  }
  if (dist[dst] == kInf) return {};

  Tunnel t;
  t.latency_ms = dist[dst];
  for (NodeId v = dst; v != src;) {
    const LinkId lid = via[v];
    t.links.push_back(lid);
    v = topo.link(lid).from;
  }
  std::reverse(t.links.begin(), t.links.end());
  return t;
}

std::vector<NodeId> tunnel_nodes(const Topology& topo, const Tunnel& t, NodeId src) {
  std::vector<NodeId> nodes{src};
  for (const LinkId lid : t.links) nodes.push_back(topo.link(lid).to);
  return nodes;
}

}  // namespace

Tunnel shortest_tunnel(const Topology& topo, NodeId src, NodeId dst) {
  if (src >= topo.node_count() || dst >= topo.node_count() || src == dst) {
    throw std::invalid_argument("shortest_tunnel: bad endpoints");
  }
  return dijkstra(topo, src, dst, {}, {});
}

std::vector<Tunnel> k_shortest_tunnels(const Topology& topo, NodeId src,
                                       NodeId dst, int k) {
  if (k < 1) throw std::invalid_argument("k_shortest_tunnels: k < 1");
  std::vector<Tunnel> result;
  const Tunnel first = shortest_tunnel(topo, src, dst);
  if (first.links.empty()) return result;
  result.push_back(first);

  // Yen's algorithm: candidates are spur deviations off each accepted path.
  auto by_latency = [](const Tunnel& a, const Tunnel& b) {
    return a.latency_ms < b.latency_ms ||
           (a.latency_ms == b.latency_ms && a.links < b.links);
  };
  std::vector<Tunnel> candidates;

  while (static_cast<int>(result.size()) < k) {
    const Tunnel& prev = result.back();
    const std::vector<NodeId> prev_nodes = tunnel_nodes(topo, prev, src);

    for (std::size_t spur = 0; spur < prev.links.size(); ++spur) {
      const NodeId spur_node = prev_nodes[spur];

      // Root = prefix of `prev` up to the spur node.
      Tunnel root;
      for (std::size_t i = 0; i < spur; ++i) {
        root.links.push_back(prev.links[i]);
        root.latency_ms += topo.link(prev.links[i]).latency_ms;
      }

      // Ban the next link of every accepted path sharing this root, and ban
      // root nodes (except the spur node) to keep paths loopless.
      std::set<LinkId> banned_links;
      for (const Tunnel& p : result) {
        if (p.links.size() > spur &&
            std::equal(p.links.begin(), p.links.begin() + static_cast<std::ptrdiff_t>(spur),
                       root.links.begin(), root.links.end())) {
          banned_links.insert(p.links[spur]);
        }
      }
      std::set<NodeId> banned_nodes(prev_nodes.begin(),
                                    prev_nodes.begin() + static_cast<std::ptrdiff_t>(spur));

      const Tunnel spur_path = dijkstra(topo, spur_node, dst, banned_links, banned_nodes);
      if (spur_path.links.empty()) continue;

      Tunnel full = root;
      full.links.insert(full.links.end(), spur_path.links.begin(), spur_path.links.end());
      full.latency_ms += spur_path.latency_ms;
      if (std::find(result.begin(), result.end(), full) == result.end() &&
          std::find(candidates.begin(), candidates.end(), full) == candidates.end()) {
        candidates.push_back(full);
      }
    }

    if (candidates.empty()) break;
    const auto best = std::min_element(candidates.begin(), candidates.end(), by_latency);
    result.push_back(*best);
    candidates.erase(best);
  }
  return result;
}

FlowRequest make_request(const Topology& topo, Flow flow, int k_tunnels) {
  FlowRequest req;
  req.tunnels = k_shortest_tunnels(topo, flow.src, flow.dst, k_tunnels);
  if (req.tunnels.empty()) {
    throw std::invalid_argument("make_request: destination unreachable");
  }
  req.flow = std::move(flow);
  return req;
}

}  // namespace compsynth::te
