
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/te/allocator.cpp" "src/te/CMakeFiles/compsynth_te.dir/allocator.cpp.o" "gcc" "src/te/CMakeFiles/compsynth_te.dir/allocator.cpp.o.d"
  "/root/repo/src/te/lp/simplex.cpp" "src/te/CMakeFiles/compsynth_te.dir/lp/simplex.cpp.o" "gcc" "src/te/CMakeFiles/compsynth_te.dir/lp/simplex.cpp.o.d"
  "/root/repo/src/te/scenario_gen.cpp" "src/te/CMakeFiles/compsynth_te.dir/scenario_gen.cpp.o" "gcc" "src/te/CMakeFiles/compsynth_te.dir/scenario_gen.cpp.o.d"
  "/root/repo/src/te/topology.cpp" "src/te/CMakeFiles/compsynth_te.dir/topology.cpp.o" "gcc" "src/te/CMakeFiles/compsynth_te.dir/topology.cpp.o.d"
  "/root/repo/src/te/tunnel.cpp" "src/te/CMakeFiles/compsynth_te.dir/tunnel.cpp.o" "gcc" "src/te/CMakeFiles/compsynth_te.dir/tunnel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pref/CMakeFiles/compsynth_pref.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/compsynth_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/compsynth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
