#include "util/checksum.h"

#include <array>
#include <cstdio>
#include <string>

namespace compsynth::util {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string crc32_hex(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

}  // namespace compsynth::util
