#include "sketch/ast.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sketch/typecheck.h"

namespace compsynth::sketch {

namespace {

ExprPtr make_node(Expr node) { return std::make_shared<const Expr>(std::move(node)); }

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

}  // namespace

bool is_numeric_kind(Expr::Kind kind) {
  switch (kind) {
    case Expr::Kind::kConst:
    case Expr::Kind::kMetric:
    case Expr::Kind::kHole:
    case Expr::Kind::kNeg:
    case Expr::Kind::kBinary:
    case Expr::Kind::kIte:
    case Expr::Kind::kChoice:
      return true;
    case Expr::Kind::kCmp:
    case Expr::Kind::kBoolBinary:
    case Expr::Kind::kNot:
    case Expr::Kind::kBoolConst:
      return false;
  }
  return false;
}

ExprPtr constant(double value) {
  Expr e;
  e.kind = Expr::Kind::kConst;
  e.literal = value;
  return make_node(std::move(e));
}

ExprPtr bool_constant(bool value) {
  Expr e;
  e.kind = Expr::Kind::kBoolConst;
  e.literal = value ? 1 : 0;
  return make_node(std::move(e));
}

ExprPtr metric(MetricId id) {
  Expr e;
  e.kind = Expr::Kind::kMetric;
  e.metric = id;
  return make_node(std::move(e));
}

ExprPtr hole(HoleId id) {
  Expr e;
  e.kind = Expr::Kind::kHole;
  e.hole = id;
  return make_node(std::move(e));
}

ExprPtr neg(ExprPtr operand) {
  require(operand != nullptr, "neg: null operand");
  Expr e;
  e.kind = Expr::Kind::kNeg;
  e.children = {std::move(operand)};
  return make_node(std::move(e));
}

ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  require(lhs != nullptr && rhs != nullptr, "binary: null operand");
  Expr e;
  e.kind = Expr::Kind::kBinary;
  e.bin_op = op;
  e.children = {std::move(lhs), std::move(rhs)};
  return make_node(std::move(e));
}

ExprPtr ite(ExprPtr condition, ExprPtr then_branch, ExprPtr else_branch) {
  require(condition != nullptr && then_branch != nullptr && else_branch != nullptr,
          "ite: null operand");
  Expr e;
  e.kind = Expr::Kind::kIte;
  e.children = {std::move(condition), std::move(then_branch), std::move(else_branch)};
  return make_node(std::move(e));
}

ExprPtr choice(HoleId selector, std::vector<ExprPtr> alternatives) {
  require(alternatives.size() >= 2, "choice: need at least two alternatives");
  for (const ExprPtr& alt : alternatives) {
    require(alt != nullptr, "choice: null alternative");
  }
  Expr e;
  e.kind = Expr::Kind::kChoice;
  e.hole = selector;
  e.children = std::move(alternatives);
  return make_node(std::move(e));
}

ExprPtr compare(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  require(lhs != nullptr && rhs != nullptr, "compare: null operand");
  Expr e;
  e.kind = Expr::Kind::kCmp;
  e.cmp_op = op;
  e.children = {std::move(lhs), std::move(rhs)};
  return make_node(std::move(e));
}

ExprPtr bool_binary(BoolOp op, ExprPtr lhs, ExprPtr rhs) {
  require(lhs != nullptr && rhs != nullptr, "bool_binary: null operand");
  Expr e;
  e.kind = Expr::Kind::kBoolBinary;
  e.bool_op = op;
  e.children = {std::move(lhs), std::move(rhs)};
  return make_node(std::move(e));
}

ExprPtr logical_not(ExprPtr operand) {
  require(operand != nullptr, "not: null operand");
  Expr e;
  e.kind = Expr::Kind::kNot;
  e.children = {std::move(operand)};
  return make_node(std::move(e));
}

ExprPtr with_location(const ExprPtr& e, std::uint32_t line, std::uint32_t column) {
  if (e == nullptr) return e;
  Expr copy = *e;
  copy.line = line;
  copy.column = column;
  return make_node(std::move(copy));
}

ExprPtr add(ExprPtr lhs, ExprPtr rhs) { return binary(BinOp::kAdd, std::move(lhs), std::move(rhs)); }
ExprPtr sub(ExprPtr lhs, ExprPtr rhs) { return binary(BinOp::kSub, std::move(lhs), std::move(rhs)); }
ExprPtr mul(ExprPtr lhs, ExprPtr rhs) { return binary(BinOp::kMul, std::move(lhs), std::move(rhs)); }

double HoleSpec::value_at(std::int64_t i) const {
  if (i < 0 || i >= count) throw std::out_of_range("HoleSpec::value_at: index outside grid");
  return lo + static_cast<double>(i) * step;
}

std::int64_t HoleSpec::nearest_index(double v) const {
  if (count <= 1 || step == 0) return 0;
  const double raw = (v - lo) / step;
  const auto i = static_cast<std::int64_t>(std::llround(raw));
  return std::clamp<std::int64_t>(i, 0, count - 1);
}

Sketch::Sketch(std::string name, std::vector<MetricSpec> metrics,
               std::vector<HoleSpec> holes, ExprPtr body)
    : name_(std::move(name)),
      metrics_(std::move(metrics)),
      holes_(std::move(holes)),
      body_(std::move(body)) {
  require(body_ != nullptr, "Sketch: null body");
  require(!metrics_.empty(), "Sketch: at least one metric required");
  for (const auto& m : metrics_) {
    require(!m.name.empty(), "Sketch: metric name empty");
    require(m.lo <= m.hi, "Sketch: metric range inverted");
  }
  for (const auto& h : holes_) {
    require(!h.name.empty(), "Sketch: hole name empty");
    require(h.count >= 1, "Sketch: hole grid must be non-empty");
    require(h.count == 1 || h.step > 0, "Sketch: hole grid step must be positive");
  }
  // Reject duplicate names across both namespaces: the DSL has one scope.
  std::vector<std::string_view> names;
  for (const auto& m : metrics_) names.push_back(m.name);
  for (const auto& h : holes_) names.push_back(h.name);
  std::sort(names.begin(), names.end());
  require(std::adjacent_find(names.begin(), names.end()) == names.end(),
          "Sketch: duplicate metric/hole name");
  typecheck(*this);  // throws TypeError on ill-typed bodies
}

std::size_t Sketch::metric_index(std::string_view name) const {
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name == name) return i;
  }
  return npos;
}

std::size_t Sketch::hole_index(std::string_view name) const {
  for (std::size_t i = 0; i < holes_.size(); ++i) {
    if (holes_[i].name == name) return i;
  }
  return npos;
}

std::int64_t Sketch::candidate_space_size() const {
  std::int64_t total = 1;
  for (const auto& h : holes_) {
    if (total > std::numeric_limits<std::int64_t>::max() / h.count) {
      return std::numeric_limits<std::int64_t>::max();
    }
    total *= h.count;
  }
  return total;
}

std::vector<double> Sketch::hole_values(const HoleAssignment& a) const {
  if (a.index.size() != holes_.size()) {
    throw std::invalid_argument("hole_values: assignment arity mismatch");
  }
  std::vector<double> out(holes_.size());
  for (std::size_t i = 0; i < holes_.size(); ++i) out[i] = holes_[i].value_at(a.index[i]);
  return out;
}

bool Sketch::valid_assignment(const HoleAssignment& a) const {
  if (a.index.size() != holes_.size()) return false;
  for (std::size_t i = 0; i < holes_.size(); ++i) {
    if (a.index[i] < 0 || a.index[i] >= holes_[i].count) return false;
  }
  return true;
}

}  // namespace compsynth::sketch
