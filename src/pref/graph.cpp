#include "pref/graph.h"

#include <algorithm>
#include <limits>

#include "obs/run_context.h"

namespace compsynth::pref {

namespace {

const char* add_result_name(AddResult r) {
  switch (r) {
    case AddResult::kAdded: return "added";
    case AddResult::kDuplicate: return "duplicate";
    case AddResult::kCycle: return "cycle";
    case AddResult::kSelfLoop: return "self_loop";
  }
  return "?";
}

}  // namespace

VertexId PreferenceGraph::intern(const Scenario& s) {
  if (const auto existing = find(s)) return *existing;
  scenarios_.push_back(s);
  return scenarios_.size() - 1;
}

std::optional<VertexId> PreferenceGraph::find(const Scenario& s) const {
  for (VertexId v = 0; v < scenarios_.size(); ++v) {
    if (scenarios_[v] == s) return v;
  }
  return std::nullopt;
}

std::optional<std::size_t> PreferenceGraph::edge_index(VertexId better,
                                                       VertexId worse) const {
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].better == better && edges_[i].worse == worse) return i;
  }
  return std::nullopt;
}

AddResult PreferenceGraph::add_preference(VertexId better, VertexId worse,
                                          double weight) {
  if (better >= scenarios_.size() || worse >= scenarios_.size()) {
    throw std::out_of_range("add_preference: unknown vertex");
  }
  AddResult result = AddResult::kAdded;
  if (better == worse) {
    result = AddResult::kSelfLoop;
  } else if (const auto i = edge_index(better, worse)) {
    edges_[*i].weight += weight;
    result = AddResult::kDuplicate;
  } else if (!allow_inconsistent_ && reachable(worse, better)) {
    result = AddResult::kCycle;
  } else {
    edges_.push_back(Edge{better, worse, weight});
  }
  if (obs::active(obs_)) {
    if (result == AddResult::kAdded) obs_->count("pref.edges.added");
    if (result == AddResult::kCycle) obs_->count("pref.cycles.rejected");
    if (obs_->tracing()) {
      obs::TraceEvent e("pref_edge");
      e.str("kind", "preference")
          .str("result", add_result_name(result))
          .integer("better", static_cast<long long>(better))
          .integer("worse", static_cast<long long>(worse))
          .num("weight", weight)
          .integer("edges", static_cast<long long>(edges_.size()));
      obs_->emit(e);
    }
  }
  return result;
}

bool PreferenceGraph::add_tie(VertexId u, VertexId v) {
  if (u >= scenarios_.size() || v >= scenarios_.size()) {
    throw std::out_of_range("add_tie: unknown vertex");
  }
  bool added = false;
  if (u != v) {
    if (u > v) std::swap(u, v);
    const std::pair<VertexId, VertexId> key{u, v};
    if (std::find(ties_.begin(), ties_.end(), key) == ties_.end()) {
      ties_.push_back(key);
      added = true;
    }
  }
  if (obs::active(obs_)) {
    if (added) obs_->count("pref.ties.added");
    if (obs_->tracing()) {
      obs::TraceEvent e("pref_edge");
      e.str("kind", "tie")
          .str("result", added ? "added" : "duplicate")
          .integer("better", static_cast<long long>(u))
          .integer("worse", static_cast<long long>(v))
          .integer("ties", static_cast<long long>(ties_.size()));
      obs_->emit(e);
    }
  }
  return added;
}

bool PreferenceGraph::reachable(VertexId from, VertexId to) const {
  return reachable_over(from, to, edges_);
}

bool PreferenceGraph::reachable_over(VertexId from, VertexId to,
                                     const std::vector<Edge>& edges) const {
  if (from == to) return true;
  std::vector<bool> seen(scenarios_.size(), false);
  std::vector<VertexId> stack{from};
  seen[from] = true;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (const Edge& e : edges) {
      if (e.better != v || seen[e.worse]) continue;
      if (e.worse == to) return true;
      seen[e.worse] = true;
      stack.push_back(e.worse);
    }
  }
  return false;
}

bool PreferenceGraph::has_cycle() const { return find_cycle_edges().has_value(); }

std::vector<VertexId> PreferenceGraph::topological_order() const {
  std::vector<std::size_t> indegree(scenarios_.size(), 0);
  for (const Edge& e : edges_) ++indegree[e.worse];

  std::vector<VertexId> ready;
  for (VertexId v = 0; v < scenarios_.size(); ++v) {
    if (indegree[v] == 0) ready.push_back(v);
  }
  std::vector<VertexId> order;
  order.reserve(scenarios_.size());
  while (!ready.empty()) {
    const VertexId v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (const Edge& e : edges_) {
      if (e.better == v && --indegree[e.worse] == 0) ready.push_back(e.worse);
    }
  }
  if (order.size() != scenarios_.size()) return {};  // cycle
  return order;
}

std::optional<std::vector<std::size_t>> PreferenceGraph::find_cycle_edges() const {
  // Iterative DFS with colors; returns the edge indices along one cycle.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(scenarios_.size(), Color::kWhite);
  std::vector<std::size_t> parent_edge(scenarios_.size(),
                                       std::numeric_limits<std::size_t>::max());

  for (VertexId root = 0; root < scenarios_.size(); ++root) {
    if (color[root] != Color::kWhite) continue;
    // Stack of (vertex, next edge index to scan).
    std::vector<std::pair<VertexId, std::size_t>> stack{{root, 0}};
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      bool descended = false;
      for (std::size_t i = next; i < edges_.size(); ++i) {
        if (edges_[i].better != v) continue;
        const VertexId w = edges_[i].worse;
        next = i + 1;
        if (color[w] == Color::kGray) {
          // Found a back edge w ... v -> w: collect the cycle edges.
          std::vector<std::size_t> cycle{i};
          VertexId cur = v;
          while (cur != w) {
            const std::size_t pe = parent_edge[cur];
            cycle.push_back(pe);
            cur = edges_[pe].better;
          }
          return cycle;
        }
        if (color[w] == Color::kWhite) {
          color[w] = Color::kGray;
          parent_edge[w] = i;
          stack.emplace_back(w, 0);
          descended = true;
          break;
        }
      }
      if (!descended) {
        color[v] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

std::optional<Edge> PreferenceGraph::drop_lightest_edge() {
  if (edges_.empty()) return std::nullopt;
  std::size_t victim = 0;
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    if (edges_[i].weight < edges_[victim].weight) victim = i;
  }
  const Edge removed = edges_[victim];
  edges_.erase(edges_.begin() + static_cast<std::ptrdiff_t>(victim));
  return removed;
}

std::size_t PreferenceGraph::transitive_reduce() {
  if (has_cycle()) {
    throw std::logic_error("transitive_reduce: graph has a cycle; repair first");
  }
  std::size_t removed = 0;
  // Quadratic-ish but fine at session scale (tens of edges). An edge is
  // redundant when its head still reaches its tail without it.
  for (std::size_t i = 0; i < edges_.size();) {
    const Edge e = edges_[i];
    edges_.erase(edges_.begin() + static_cast<std::ptrdiff_t>(i));
    if (reachable(e.better, e.worse)) {
      ++removed;  // implied by the remaining edges; keep it out
    } else {
      edges_.insert(edges_.begin() + static_cast<std::ptrdiff_t>(i), e);
      ++i;
    }
  }
  return removed;
}

std::vector<Edge> PreferenceGraph::repair() {
  std::vector<Edge> removed;
  while (const auto cycle = find_cycle_edges()) {
    // Drop the lowest-weight edge on the cycle (least-trusted answer).
    std::size_t victim = (*cycle)[0];
    for (const std::size_t i : *cycle) {
      if (edges_[i].weight < edges_[victim].weight) victim = i;
    }
    removed.push_back(edges_[victim]);
    edges_.erase(edges_.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  return removed;
}

}  // namespace compsynth::pref
