#include "serve/line_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace compsynth::serve {

namespace {

// One request line is at most this long; longer floods the connection shut.
constexpr std::size_t kMaxLine = 1 << 20;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

LineServer::LineServer(LineServerConfig config, Handler handler)
    : config_(std::move(config)), handler_(std::move(handler)) {
  const std::string& listen = config_.listen;
  if (listen.rfind("unix:", 0) == 0) {
    unix_socket_ = true;
    unix_path_ = listen.substr(5);
    if (unix_path_.empty()) {
      throw std::runtime_error("--listen unix: requires a socket path");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (unix_path_.size() >= sizeof addr.sun_path) {
      throw std::runtime_error("unix socket path too long: " + unix_path_);
    }
    std::strncpy(addr.sun_path, unix_path_.c_str(), sizeof addr.sun_path - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    ::unlink(unix_path_.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
        0) {
      throw_errno("bind " + unix_path_);
    }
    endpoint_ = "unix:" + unix_path_;
  } else if (listen.rfind("tcp:", 0) == 0) {
    std::string host_part = "127.0.0.1";
    std::string port_part = listen.substr(4);
    const std::size_t colon = port_part.rfind(':');
    if (colon != std::string::npos) {
      host_part = port_part.substr(0, colon);
      port_part = port_part.substr(colon + 1);
    }
    int port = -1;
    try {
      port = std::stoi(port_part);
    } catch (const std::exception&) {
      port = -1;
    }
    if (port < 0 || port > 65535) {
      throw std::runtime_error("bad tcp port in --listen: " + listen);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host_part.c_str(), &addr.sin_addr) != 1) {
      throw std::runtime_error("bad tcp host in --listen (numeric IPv4): " +
                               host_part);
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
        0) {
      throw_errno("bind " + listen);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    endpoint_ =
        "tcp:" + host_part + ":" + std::to_string(ntohs(bound.sin_port));
  } else {
    throw std::runtime_error(
        "--listen must be unix:<path> or tcp:[host:]<port>, got '" + listen +
        "'");
  }
  if (::listen(listen_fd_, config_.backlog) < 0) throw_errno("listen");
}

LineServer::~LineServer() {
  stop();
  wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (unix_socket_) ::unlink(unix_path_.c_str());
}

std::string LineServer::endpoint() const { return endpoint_; }

void LineServer::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void LineServer::begin_stop() {
  {
    const util::MutexLock lk(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  // Unblock accept(); on Linux shutdown() on a listening socket makes a
  // blocked accept return. Closing happens in the destructor.
  ::shutdown(listen_fd_, SHUT_RDWR);
}

void LineServer::stop() {
  begin_stop();
  // Read-side only: a blocked recv wakes with EOF and the connection drains,
  // while a response currently being written still reaches the peer — the
  // graceful half of SIGTERM handling (tools/compsynth_serve.cpp).
  const util::MutexLock lk(mu_);
  for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
}

void LineServer::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // No new connections can appear now; close out the existing ones.
  {
    const util::MutexLock lk(mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  std::vector<std::thread> threads;
  {
    const util::MutexLock lk(mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void LineServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    {
      const util::MutexLock lk(mu_);
      if (stopping_) {
        if (fd >= 0) ::close(fd);
        return;
      }
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return;  // listener gone
      }
      conn_fds_.insert(fd);
      conn_threads_.emplace_back([this, fd] { connection_loop(fd); });
    }
  }
}

void LineServer::connection_loop(int fd) {
  std::string buffer;
  char chunk[4096];
  bool stop_requested = false;
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', pos);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(pos, nl - pos);
      pos = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      LineControl ctl;
      const std::string response = handler_(line, &ctl);
      if (ctl.send_prefix < response.size()) {
        // Torn-response fault: partial bytes, no newline, connection dropped.
        send_all(fd, std::string_view(response).substr(0, ctl.send_prefix));
        pos = buffer.size();
        stop_requested = true;
        break;
      }
      if (!send_all(fd, response) || !send_all(fd, "\n")) {
        pos = buffer.size();
        stop_requested = true;  // peer gone; just leave the loop below
        break;
      }
      if (ctl.abort_after) {
        // Crash-after-ack fault: the response is on the wire, now take the
        // whole server down without draining anything else.
        begin_stop();
        {
          const util::MutexLock lk(mu_);
          for (const int other : conn_fds_) {
            if (other != fd) ::shutdown(other, SHUT_RDWR);
          }
        }
        pos = buffer.size();
        stop_requested = true;
        break;
      }
      if (ctl.stop_after) {
        // Shutdown verb: the response is on the wire *before* the stop is
        // initiated, so the requester always hears the ack.
        begin_stop();
        stop_requested = true;
        break;
      }
      {
        const util::MutexLock lk(mu_);
        if (stopping_) {
          stop_requested = true;
          break;
        }
      }
    }
    buffer.erase(0, pos);
    if (stop_requested || buffer.size() > kMaxLine) break;
  }
  // Untrack before close: once closed, the kernel may hand the same fd
  // number to a concurrent accept, and erasing afterwards would drop the
  // *new* connection's entry (stop() would then never shut it down).
  {
    const util::MutexLock lk(mu_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
}

}  // namespace compsynth::serve
