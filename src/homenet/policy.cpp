#include "homenet/policy.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sketch/eval.h"
#include "sketch/library.h"

namespace compsynth::homenet {

std::vector<double> class_demands(std::span<const AppDemand> apps) {
  std::vector<double> demand(kClassCount, 0.0);
  for (const AppDemand& a : apps) {
    if (a.demand_mbps < 0) throw std::invalid_argument("class_demands: negative demand");
    demand[static_cast<std::size_t>(a.traffic_class)] += a.demand_mbps;
  }
  return demand;
}

ClassAllocation allocate(std::span<const AppDemand> apps, double capacity_mbps,
                         const Policy& policy) {
  if (capacity_mbps <= 0) throw std::invalid_argument("allocate: non-positive capacity");
  for (const double w : policy.weight) {
    if (w < 0) throw std::invalid_argument("allocate: negative weight");
  }
  const std::vector<double> demand = class_demands(apps);

  ClassAllocation out;
  double remaining = capacity_mbps;

  // Pass 1: minimum guarantees, clipped to demand, granted in class order
  // (interactive first) while capacity lasts.
  for (std::size_t c = 0; c < kClassCount; ++c) {
    const double want = std::min(policy.guarantee_mbps[c], demand[c]);
    const double grant = std::min(want, remaining);
    out.rate_mbps[c] = grant;
    remaining -= grant;
  }

  // Pass 2: weighted water-filling of the remainder over unmet demand.
  for (;;) {
    double weight_sum = 0;
    for (std::size_t c = 0; c < kClassCount; ++c) {
      if (out.rate_mbps[c] < demand[c] && policy.weight[c] > 0) {
        weight_sum += policy.weight[c];
      }
    }
    if (weight_sum <= 0 || remaining <= 1e-12) break;

    // Smallest per-weight level at which some class saturates its demand.
    double level = remaining / weight_sum;
    for (std::size_t c = 0; c < kClassCount; ++c) {
      if (out.rate_mbps[c] < demand[c] && policy.weight[c] > 0) {
        level = std::min(level, (demand[c] - out.rate_mbps[c]) / policy.weight[c]);
      }
    }
    for (std::size_t c = 0; c < kClassCount; ++c) {
      if (out.rate_mbps[c] < demand[c] && policy.weight[c] > 0) {
        const double grant = level * policy.weight[c];
        out.rate_mbps[c] += grant;
        remaining -= grant;
      }
    }
    if (level <= 1e-12) break;  // all active classes saturated
  }
  return out;
}

pref::Scenario to_scenario(const ClassAllocation& alloc) {
  const sketch::Sketch& sk = sketch::homenet_sketch();
  pref::Scenario s;
  s.metrics = {alloc.rate_mbps[0], alloc.rate_mbps[1], alloc.rate_mbps[2]};
  for (std::size_t i = 0; i < s.metrics.size(); ++i) {
    s.metrics[i] = std::clamp(s.metrics[i], sk.metrics()[i].lo, sk.metrics()[i].hi);
  }
  return s;
}

std::vector<Policy> standard_policies() {
  std::vector<Policy> out;
  out.push_back(Policy{.label = "equal", .weight = {1, 1, 1}});
  out.push_back(Policy{.label = "call-first", .weight = {8, 3, 1}});
  out.push_back(Policy{.label = "streaming-heavy", .weight = {2, 6, 1}});
  out.push_back(Policy{.label = "guaranteed-calls",
                       .weight = {1, 1, 1},
                       .guarantee_mbps = {15, 0, 0}});
  out.push_back(Policy{.label = "bulk-throttled", .weight = {4, 4, 0.5}});
  return out;
}

std::vector<AppDemand> random_household(util::Rng& rng, std::size_t devices) {
  std::vector<AppDemand> out;
  out.reserve(devices);
  for (std::size_t i = 0; i < devices; ++i) {
    AppDemand d;
    d.device = "dev" + std::to_string(i);
    const auto cls = rng.index(kClassCount);
    d.traffic_class = static_cast<TrafficClass>(cls);
    switch (d.traffic_class) {
      case TrafficClass::kInteractive:
        d.demand_mbps = rng.uniform_real(2, 8);     // calls / gaming
        break;
      case TrafficClass::kStreaming:
        d.demand_mbps = rng.uniform_real(5, 25);    // HD/4K streams
        break;
      case TrafficClass::kBulk:
        d.demand_mbps = rng.uniform_real(10, 60);   // backups / downloads
        break;
    }
    out.push_back(std::move(d));
  }
  return out;
}

std::size_t pick_best(const sketch::Sketch& sketch,
                      const sketch::HoleAssignment& objective,
                      std::span<const AppDemand> apps, double capacity_mbps,
                      std::span<const Policy> policies) {
  if (policies.empty()) throw std::invalid_argument("pick_best: no policies");
  std::size_t best = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const pref::Scenario s = to_scenario(allocate(apps, capacity_mbps, policies[i]));
    const double v = sketch::eval(sketch, objective, s.metrics);
    if (v > best_value) {
      best_value = v;
      best = i;
    }
  }
  return best;
}

}  // namespace compsynth::homenet
