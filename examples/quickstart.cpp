// Quickstart: learn the SWAN objective of the paper's Fig. 2 end to end.
//
//   1. Load the built-in SWAN sketch (Fig. 2a) — an objective over
//      (throughput, latency) with four unknown holes.
//   2. Simulate the architect with a ground-truth oracle whose latent
//      objective is the Fig. 2b target (thresholds 1 Gbps / 50 ms,
//      slopes 1 / 5).
//   3. Run the comparative synthesizer with the paper's protocol: 5 random
//      initial scenarios, one ranked pair per iteration, Z3 back-end.
//   4. Print the interaction transcript and the learned objective, and
//      verify it is ranking-equivalent to the latent target.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "oracle/ground_truth.h"
#include "sketch/library.h"
#include "sketch/printer.h"
#include "solver/equivalence.h"
#include "synth/synthesizer.h"

int main() {
  using namespace compsynth;

  const sketch::Sketch& sk = sketch::swan_sketch();
  std::printf("Sketch under synthesis (paper Fig. 2a):\n%s\n",
              sketch::print_sketch(sk).c_str());

  const sketch::HoleAssignment latent = sketch::swan_target();
  std::printf("Latent architect intent (paper Fig. 2b):\n  %s\n\n",
              sketch::print_instantiated(sk, latent).c_str());

  synth::SynthesisConfig config;
  config.seed = 2019;
  synth::Synthesizer synthesizer = synth::make_z3_synthesizer(sk, config);
  oracle::GroundTruthOracle architect(sk, latent, config.finder.tie_tolerance);

  std::printf("Running comparative synthesis (Z3 back-end)...\n");
  const synth::SynthesisResult result = synthesizer.run(architect);

  for (const synth::IterationRecord& it : result.transcript) {
    std::printf("  iteration %2d: %6.3f s solver time, %d pair(s) ranked\n",
                it.index, it.solver_seconds, it.pairs_presented);
  }
  std::printf("\nstatus: %s after %d iterations (%.2f s solver time, "
              "%ld preference answers)\n",
              result.status == synth::SynthesisStatus::kConverged
                  ? "converged to a unique ranking"
                  : "stopped early",
              result.iterations, result.total_solver_seconds,
              result.oracle_comparisons);

  if (!result.objective) {
    std::printf("no objective learned\n");
    return 1;
  }
  std::printf("learned objective:\n  %s\n",
              sketch::print_instantiated(sk, *result.objective).c_str());

  const bool equivalent =
      solver::ranking_equivalent(sk, *result.objective, latent, config.finder);
  std::printf("ranking-equivalent to the latent intent: %s\n",
              equivalent ? "YES" : "NO");
  return equivalent ? 0 : 1;
}
