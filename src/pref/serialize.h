// Plain-text persistence for preference graphs.
//
// A real architect answers preference queries over multiple sittings, so a
// session's accumulated knowledge — the preference graph G — must survive
// restarts. The format is line-oriented and diff-friendly:
//
//   # comment
//   scenario <id> <metric0> <metric1> ...
//   prefer <better-id> <worse-id> <weight>
//   tie <id> <id>
//
// Scenario ids must be dense and in order (they are vertex ids). Doubles are
// rendered with round-trip precision (%.17g), so serialize/deserialize is
// lossless.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "pref/graph.h"

namespace compsynth::pref {

/// Thrown on malformed input (unknown directive, bad ids, parse failure).
class SerializeError : public std::runtime_error {
 public:
  explicit SerializeError(const std::string& what) : std::runtime_error(what) {}
};

/// Writes the graph in the format above.
void serialize(const PreferenceGraph& graph, std::ostream& out);
std::string serialize(const PreferenceGraph& graph);

/// Parses a graph. `allow_inconsistent` configures the returned graph (and
/// permits cycle-closing `prefer` lines). Throws SerializeError on malformed
/// input; duplicate preferences merge weight as in live recording.
PreferenceGraph deserialize(std::istream& in, bool allow_inconsistent = false);
PreferenceGraph deserialize(const std::string& text, bool allow_inconsistent = false);

}  // namespace compsynth::pref
