// Ablation D: query-selection strategy. The paper's SMT query returns an
// *arbitrary* disagreement witness; an active-learning alternative scores
// several witnesses and asks about the one whose answer splits the
// surviving candidate set most evenly (binary-search flavor). Both run on
// the grid back-end so the only difference is which question the user sees.
//
// Expected shape: bisection needs fewer interactions to converge, at a
// modest extra per-iteration scoring cost.
#include "bench_common.h"
#include "sketch/library.h"

namespace compsynth::bench {
namespace {

void BM_Query(benchmark::State& state) {
  const bool bisect = state.range(0) != 0;
  const int variant = static_cast<int>(state.range(1));
  // Two representative targets: the paper baseline and a slope-heavy one.
  const auto target = variant == 0 ? sketch::swan_target()
                                   : sketch::swan_target_with(4, 30, 2, 3);
  synth::ExperimentSpec spec{.sketch = sketch::swan_sketch(), .target = target};
  spec.backend = bisect ? synth::Backend::kGridBisection : synth::Backend::kGrid;
  spec.repetitions = repetitions(9);
  spec.config.seed = 4400 + static_cast<std::uint64_t>(state.range(0)) * 10 +
                     static_cast<std::uint64_t>(variant);
  run_and_record(state,
                 std::string(bisect ? "bisection" : "first-found") +
                     (variant == 0 ? ", baseline target" : ", variant target"),
                 spec);
}
BENCHMARK(BM_Query)->Args({0, 0})->Args({1, 0})->Args({0, 1})->Args({1, 1})
    ->Iterations(1)->UseManualTime()->Unit(benchmark::kSecond);

void print_query() {
  print_series(
      "Ablation D: arbitrary-witness vs bisection query selection",
      {"Bisection asks the question that splits the surviving candidates",
       "most evenly; fewer interactions at a small scoring cost."});
}

}  // namespace
}  // namespace compsynth::bench

COMPSYNTH_BENCH_MAIN(compsynth::bench::print_query)
