// Tests for util::ThreadPool — the substrate under GridFinder's parallel
// version-space engine, so coverage (every index exactly once), exception
// propagation and reusability matter more than raw scheduling cleverness.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace compsynth::util {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LT(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, HandlesOffsetAndEmptyRanges) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.parallel_for(100, 200, [&](std::size_t lo, std::size_t hi) {
    long local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += static_cast<long>(i);
    sum += local;
  });
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);

  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  pool.parallel_for(7, 3, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SizeOnePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  pool.parallel_for(0, 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) seen.push_back(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 64u);
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, MinChunkBoundsTheNumberOfChunks) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000, kMinChunk = 128;
  std::atomic<int> calls{0};
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(
      0, kN,
      [&](std::size_t lo, std::size_t hi) {
        ++calls;
        EXPECT_GE(hi - lo, 1u);
        covered += hi - lo;
      },
      kMinChunk);
  EXPECT_EQ(covered.load(), kN);
  EXPECT_LE(calls.load(), static_cast<int>((kN + kMinChunk - 1) / kMinChunk));
}

TEST(ThreadPool, PropagatesTheFirstExceptionAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000,
                        [&](std::size_t lo, std::size_t) {
                          if (lo >= 500) throw std::runtime_error("boom");
                        }),
      std::runtime_error);

  // The pool must survive a throwing run: workers alive, next run clean.
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(0, 1000, [&](std::size_t lo, std::size_t hi) {
    covered += hi - lo;
  });
  EXPECT_EQ(covered.load(), 1000u);
}

TEST(ThreadPool, ManySmallRunsBackToBack) {
  // Shakes out lost-wakeup / completion-accounting races: every run must
  // terminate and cover its range.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::size_t> covered{0};
    const std::size_t n = 1 + static_cast<std::size_t>(round) % 97;
    pool.parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
      covered += hi - lo;
    });
    ASSERT_EQ(covered.load(), n) << "round " << round;
  }
}

TEST(ThreadPool, SharedPoolIsASingleton) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
  std::atomic<std::size_t> covered{0};
  a.parallel_for(0, 256, [&](std::size_t lo, std::size_t hi) {
    covered += hi - lo;
  });
  EXPECT_EQ(covered.load(), 256u);
}

}  // namespace
}  // namespace compsynth::util
