# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_grid_synthesis "/root/repo/build/tools/compsynth_cli" "/root/repo/tools/sketches/swan.sketch" "--backend" "grid" "--quiet" "--seed" "9" "--target" "if throughput >= 1 && latency <= 50 then throughput - throughput*latency + 1000 else throughput - 5*throughput*latency")
set_tests_properties(cli_grid_synthesis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_save_resume "/usr/bin/cmake" "-DCLI=/root/repo/build/tools/compsynth_cli" "-DSKETCH=/root/repo/tools/sketches/swan.sketch" "-DWORKDIR=/root/repo/build/tools" "-P" "/root/repo/tools/cli_save_resume_test.cmake")
set_tests_properties(cli_save_resume PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_usage "/root/repo/build/tools/compsynth_cli")
set_tests_properties(cli_rejects_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
