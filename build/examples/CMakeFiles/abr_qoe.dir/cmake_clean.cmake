file(REMOVE_RECURSE
  "CMakeFiles/abr_qoe.dir/abr_qoe.cpp.o"
  "CMakeFiles/abr_qoe.dir/abr_qoe.cpp.o.d"
  "abr_qoe"
  "abr_qoe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_qoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
