// Learning a video QoE objective (paper §6.2, "Algorithm design for video
// streaming").
//
// State-of-the-art ABR controllers optimize ad-hoc linear combinations of
// bitrate, rebuffering, startup delay and bitrate switches. This example
// instead *learns* the viewer's QoE function from comparisons of concrete
// sessions ("would you rather have 3 Mbps with 2% stalls, or 2 Mbps with
// none?"), then uses the learned objective to choose among ABR algorithms
// evaluated in the chunk-level simulator.
//
// Build & run:  ./build/examples/abr_qoe
#include <cstdio>

#include "abr/qoe.h"
#include "oracle/ground_truth.h"
#include "sketch/library.h"
#include "sketch/printer.h"
#include "synth/synthesizer.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace compsynth;

  // 1. Simulate every candidate ABR policy across a trace mix.
  util::Rng rng(31337);
  std::vector<abr::Trace> traces;
  traces.push_back(abr::constant_trace(3.0));
  traces.push_back(abr::square_trace(6.0, 0.8, 20));
  traces.push_back(abr::random_walk_trace(rng, 3.0, 0.4, 8.0));
  traces.push_back(abr::random_walk_trace(rng, 1.5, 0.3, 4.0));

  const abr::Video video;
  const auto portfolio = abr::standard_portfolio();
  const auto candidates = abr::evaluate_portfolio(video, traces, portfolio);

  util::Table table(
      {"algorithm", "bitrate (Mbps)", "rebuffer (%)", "switches", "startup (s)"});
  for (const auto& c : candidates) {
    table.add_row({c.label,
                   util::format_number(c.mean_metrics.average_bitrate_mbps),
                   util::format_number(c.mean_metrics.rebuffer_ratio_percent),
                   util::format_number(c.mean_metrics.switch_count),
                   util::format_number(c.mean_metrics.startup_seconds)});
  }
  std::printf("ABR portfolio over %zu traces x %zu chunks:\n%s\n",
              traces.size(), video.chunk_count, table.to_string().c_str());

  // 2. Learn the viewer's QoE objective from comparisons. The latent
  //    viewer tolerates up to 2% rebuffering, then punishes hard.
  const sketch::Sketch& sk = sketch::abr_qoe_sketch();
  sketch::HoleAssignment latent;
  latent.index = {sk.holes()[0].nearest_index(2),    // rb_thrsh = 2%
                  sk.holes()[1].nearest_index(2),    // w_rebuf
                  sk.holes()[2].nearest_index(0.5),  // w_switch
                  sk.holes()[3].nearest_index(1)};   // w_startup

  synth::SynthesisConfig config;
  config.seed = 11;
  synth::Synthesizer synthesizer = synth::make_grid_synthesizer(sk, config);
  oracle::GroundTruthOracle viewer(sk, latent, config.finder.tie_tolerance);
  const synth::SynthesisResult learned = synthesizer.run(viewer);
  if (!learned.objective) {
    std::printf("synthesis failed\n");
    return 1;
  }
  std::printf("Learned QoE objective after %d interactions:\n  %s\n\n",
              learned.interactions,
              sketch::print_instantiated(sk, *learned.objective).c_str());

  // 3. Choose the ABR algorithm with the learned objective.
  const std::size_t picked = abr::pick_best(sk, *learned.objective, candidates);
  const std::size_t truth = abr::pick_best(sk, latent, candidates);
  std::printf("learned objective picks:  %s\n", candidates[picked].label.c_str());
  std::printf("latent viewer would pick: %s\n", candidates[truth].label.c_str());
  std::printf("agreement: %s\n", picked == truth ? "YES" : "NO");
  return picked == truth ? 0 : 1;
}
