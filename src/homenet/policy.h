// Home-network bandwidth policy substrate (paper §6.2, application 2).
//
// A home uplink is shared by competing application classes (interactive:
// video calls / gaming; streaming: video on demand; bulk: backups, IoT
// uploads). A policy assigns each class a weight and an optional minimum
// guarantee; allocation is weighted max-min (water-filling) over class
// demands. The comparative synthesizer learns which trade-offs the
// household actually prefers — instead of asking a lay user for weights.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "pref/scenario.h"
#include "sketch/ast.h"
#include "util/rng.h"

namespace compsynth::homenet {

enum class TrafficClass : std::size_t { kInteractive = 0, kStreaming = 1, kBulk = 2 };
constexpr std::size_t kClassCount = 3;

/// One device's demand in a given class.
struct AppDemand {
  std::string device;
  TrafficClass traffic_class = TrafficClass::kBulk;
  double demand_mbps = 0;
};

/// A candidate sharing policy: per-class weights plus per-class guaranteed
/// minimum rates (granted before weighted sharing, capped by demand).
struct Policy {
  std::string label;
  double weight[kClassCount] = {1, 1, 1};
  double guarantee_mbps[kClassCount] = {0, 0, 0};
};

/// Per-class allocated rates (Mbps).
struct ClassAllocation {
  double rate_mbps[kClassCount] = {0, 0, 0};
  double total() const { return rate_mbps[0] + rate_mbps[1] + rate_mbps[2]; }
};

/// Aggregates demands per class.
std::vector<double> class_demands(std::span<const AppDemand> apps);

/// Weighted max-min allocation of `capacity_mbps` across classes:
/// guarantees first (clipped to demand and capacity), then water-filling by
/// weight on the remainder. Throws std::invalid_argument on non-positive
/// capacity or negative demands.
ClassAllocation allocate(std::span<const AppDemand> apps, double capacity_mbps,
                         const Policy& policy);

/// Projects an allocation onto the homenet sketch metric space
/// (interactive, streaming, bulk shares in Mbps), clamped to sketch ranges.
pref::Scenario to_scenario(const ClassAllocation& alloc);

/// A small portfolio of plausible household policies to choose among.
std::vector<Policy> standard_policies();

/// A random evening-household workload (calls + streams + backups).
std::vector<AppDemand> random_household(util::Rng& rng, std::size_t devices);

/// Index of the policy whose allocation the objective ranks highest.
std::size_t pick_best(const sketch::Sketch& sketch,
                      const sketch::HoleAssignment& objective,
                      std::span<const AppDemand> apps, double capacity_mbps,
                      std::span<const Policy> policies);

}  // namespace compsynth::homenet
