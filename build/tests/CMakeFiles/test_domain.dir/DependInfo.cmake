
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/domain_test.cpp" "tests/CMakeFiles/test_domain.dir/domain_test.cpp.o" "gcc" "tests/CMakeFiles/test_domain.dir/domain_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/compsynth_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/compsynth_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/oracle/CMakeFiles/compsynth_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/pref/CMakeFiles/compsynth_pref.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/compsynth_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/compsynth_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
