// Ablation A (paper §6.1 "Robustness to user inputs"): a noisy architect
// flips each strict preference answer with probability p. With
// tolerate_inconsistency on, contradictions are recorded and repaired
// (greedy feedback-edge removal + least-trusted-answer dropping) instead of
// aborting. We sweep p and report convergence and correctness rates.
//
// Grid back-end: repair forces full version-space rebuilds, which the
// explicit representation handles in milliseconds, letting this ablation
// use the paper's 9 repetitions.
#include "bench_common.h"
#include "sketch/library.h"

namespace compsynth::bench {
namespace {

void BM_Noise(benchmark::State& state) {
  const double p = static_cast<double>(state.range(0)) / 100.0;
  const bool repair = state.range(1) != 0;
  synth::ExperimentSpec spec{.sketch = sketch::swan_sketch(),
                             .target = sketch::swan_target()};
  spec.backend = synth::Backend::kGrid;
  spec.repetitions = repetitions(9);
  spec.config.seed = 5500 + static_cast<std::uint64_t>(state.range(0)) * 2 +
                     (repair ? 1 : 0);
  spec.config.tolerate_inconsistency = repair;
  spec.config.max_iterations = 120;
  spec.oracle_flip_probability = p;
  run_and_record(state,
                 "flip p=" + util::format_number(p) +
                     (repair ? " (repair on)" : " (repair off)"),
                 spec);
}
BENCHMARK(BM_Noise)
    ->Args({0, 1})
    ->Args({5, 0})->Args({5, 1})
    ->Args({10, 0})->Args({10, 1})
    ->Args({20, 0})->Args({20, 1})
    ->Iterations(1)->UseManualTime()->Unit(benchmark::kSecond);

void print_noise() {
  print_series(
      "Ablation A: noisy-user robustness (answer flip probability p)",
      {"'correct' counts runs whose learned objective is ranking-equivalent",
       "to the latent target despite corrupted answers. Repair = cycle",
       "removal + least-trusted-answer dropping (paper 6.1 future work)."});
}

}  // namespace
}  // namespace compsynth::bench

COMPSYNTH_BENCH_MAIN(compsynth::bench::print_noise)
