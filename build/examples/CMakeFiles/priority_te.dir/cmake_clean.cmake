file(REMOVE_RECURSE
  "CMakeFiles/priority_te.dir/priority_te.cpp.o"
  "CMakeFiles/priority_te.dir/priority_te.cpp.o.d"
  "priority_te"
  "priority_te.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_te.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
