file(REMOVE_RECURSE
  "libcompsynth_te.a"
)
