file(REMOVE_RECURSE
  "libcompsynth_sketch.a"
)
