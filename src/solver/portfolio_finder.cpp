#include "solver/portfolio_finder.h"

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/run_context.h"
#include "obs/trace.h"
#include "util/sync.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace compsynth::solver {

namespace {

const char* status_name(FinderStatus s) {
  switch (s) {
    case FinderStatus::kFound: return "found";
    case FinderStatus::kUniqueRanking: return "unique_ranking";
    case FinderStatus::kNoCandidate: return "no_candidate";
    case FinderStatus::kUnknown: return "unknown";
  }
  return "unknown";
}

const char* mode_name(PortfolioMode m) {
  switch (m) {
    case PortfolioMode::kRace: return "race";
    case PortfolioMode::kPinGrid: return "pin_grid";
    case PortfolioMode::kPinZ3: return "pin_z3";
  }
  return "race";
}

/// A leg's answer is decisive when it settles the loop's next move: a
/// distinguishing pair, a convergence proof, or an inconsistency verdict.
/// Only kUnknown (timeout / cancellation / budget exhaustion) is not.
bool decisive(const FinderResult& r) {
  return r.status != FinderStatus::kUnknown;
}

[[noreturn]] void bad_state(const std::string& why) {
  throw std::invalid_argument("PortfolioFinder::restore_state: " + why);
}

/// Reads one "<tag> <nbytes>\n<blob>\n" section starting at `pos`.
std::string read_section(const std::string& state, std::size_t& pos,
                         const std::string& tag) {
  const std::string header = tag + ' ';
  if (state.compare(pos, header.size(), header) != 0) {
    bad_state("expected section '" + tag + "'");
  }
  pos += header.size();
  const std::size_t eol = state.find('\n', pos);
  if (eol == std::string::npos) bad_state("truncated section header");
  std::size_t bytes = 0;
  try {
    bytes = std::stoul(state.substr(pos, eol - pos));
  } catch (const std::exception&) {
    bad_state("malformed section length");
  }
  pos = eol + 1;
  if (pos + bytes + 1 > state.size() || state[pos + bytes] != '\n') {
    bad_state("section '" + tag + "' overruns the payload");
  }
  std::string blob = state.substr(pos, bytes);
  pos += bytes + 1;
  return blob;
}

}  // namespace

PortfolioFinder::PortfolioFinder(sketch::Sketch sketch, PortfolioConfig config,
                                 Viability viability, ScenarioDomain domain)
    : config_(config) {
  GridFinderConfig grid_config = config.grid;
  if (config.mode == PortfolioMode::kRace && grid_config.threads == 0) {
    // In a race the shared pool belongs to the Z3 leg's task; a grid
    // parallel_for queued behind it would serialize the "race" on small
    // pools. An explicit threads > 1 still gets its own dedicated pool.
    grid_config.threads = 1;
  }
  grid_ = std::make_unique<GridFinder>(sketch, grid_config, viability, domain);
  z3_ = std::make_unique<Z3Finder>(std::move(sketch), config.grid.base,
                                   std::move(viability), std::move(domain));
}

void PortfolioFinder::set_run_context(const obs::RunContext* ctx) {
  CandidateFinder::set_run_context(ctx);
  grid_->set_run_context(ctx);
  z3_->set_run_context(ctx);
}

FinderResult PortfolioFinder::find_distinguishing(
    const pref::PreferenceGraph& graph, int num_pairs) {
  switch (config_.mode) {
    case PortfolioMode::kPinGrid:
      return grid_->find_distinguishing(graph, num_pairs);
    case PortfolioMode::kPinZ3:
      return z3_->find_distinguishing(graph, num_pairs);
    case PortfolioMode::kRace:
      return race(graph, num_pairs);
  }
  throw std::logic_error("PortfolioFinder: unreachable mode");
}

FinderResult PortfolioFinder::race(const pref::PreferenceGraph& graph,
                                   int num_pairs) {
  obs::Span span(obs_, "portfolio");

  FinderResult grid_result;
  FinderResult z3_result;
  double grid_secs = 0;
  double z3_secs = 0;
  bool z3_ran = false;

  util::ThreadPool& pool = util::ThreadPool::shared();
  if (pool.size() <= 1) {
    // No spawned workers: submit() would run the Z3 leg inline *before* the
    // grid leg even started. Run the (almost always faster) grid leg first
    // and consult Z3 only when the grid is not decisive.
    util::Stopwatch grid_sw;
    grid_result = grid_->find_distinguishing(graph, num_pairs);
    grid_secs = grid_sw.elapsed_seconds();
    if (!decisive(grid_result) ||
        grid_result.status == FinderStatus::kUniqueRanking) {
      // The grid's unique-ranking verdict is approximate; escalate it (and
      // any kUnknown) to the solver for an authoritative answer. kFound and
      // kNoCandidate are exact, so Z3 is skipped for those.
      util::Stopwatch z3_sw;
      z3_result = z3_->find_distinguishing(graph, num_pairs);
      z3_secs = z3_sw.elapsed_seconds();
      z3_ran = true;
    }
  } else {
    // Z3 leg on a pool worker, grid leg on the caller. Whoever produces a
    // kFound first cancels the other; the Z3 task references call locals,
    // so it is ALWAYS joined before this frame returns, cancelled or not.
    std::atomic<bool> cancel_grid{false};
    // tsa-ok(join_mutex): function-local, guards the z3_done flag below;
    // GUARDED_BY only applies to members, so the association is by comment.
    util::Mutex join_mutex;
    util::CondVar join_cv;
    bool z3_done = false;  // guarded by join_mutex

    z3_ran = true;
    pool.submit([&] {
      util::Stopwatch z3_sw;
      FinderResult r = z3_->find_distinguishing(graph, num_pairs);
      const double secs = z3_sw.elapsed_seconds();
      {
        const util::MutexLock lock(join_mutex);
        z3_result = std::move(r);
        z3_secs = secs;
        z3_done = true;
        if (z3_result.status == FinderStatus::kFound) {
          cancel_grid.store(true, std::memory_order_relaxed);
        }
      }
      join_cv.notify_all();
    });

    grid_->set_cancel_flag(&cancel_grid);
    util::Stopwatch grid_sw;
    grid_result = grid_->find_distinguishing(graph, num_pairs);
    grid_secs = grid_sw.elapsed_seconds();
    grid_->set_cancel_flag(nullptr);

    if (grid_result.status == FinderStatus::kFound) {
      // Grid won the race; stop burning solver time. interrupt() is safe
      // against the task having already finished (it is then a no-op on the
      // next query's entry, which resets the flag).
      z3_->interrupt();
    }
    const util::MutexLock lock(join_mutex);
    join_cv.wait(join_mutex, [&] { return z3_done; });
  }

  // Winner order: a concrete distinguishing pair beats everything (grid's
  // pairs are preferred — they arrive with the version space already synced
  // for the follow-up find_consistent); then Z3's definitive verdicts,
  // which are proofs, beat the grid's approximate ones.
  FinderResult* winner = nullptr;
  const char* winner_name = nullptr;
  if (grid_result.status == FinderStatus::kFound) {
    winner = &grid_result;
    winner_name = "grid";
  } else if (z3_ran && z3_result.status == FinderStatus::kFound) {
    winner = &z3_result;
    winner_name = "z3";
  } else if (z3_ran && decisive(z3_result)) {
    winner = &z3_result;
    winner_name = "z3";
  } else if (decisive(grid_result)) {
    winner = &grid_result;
    winner_name = "grid";
  } else {
    winner = z3_ran ? &z3_result : &grid_result;
    winner_name = z3_ran ? "z3" : "grid";
  }

  if (obs::active(obs_)) {
    obs_->count("portfolio.races");
    obs_->count(winner_name[0] == 'g' ? "portfolio.grid_wins"
                                      : "portfolio.z3_wins");
    if (obs::TraceEvent* e = span.event()) {
      e->str("mode", mode_name(config_.mode))
          .str("winner", winner_name)
          .str("status", status_name(winner->status))
          .str("grid_status", status_name(grid_result.status))
          .str("z3_status", z3_ran ? status_name(z3_result.status) : "skipped")
          .num("grid_secs", grid_secs)
          .num("z3_secs", z3_secs);
    }
  }
  return std::move(*winner);
}

std::optional<sketch::HoleAssignment> PortfolioFinder::find_consistent(
    const pref::PreferenceGraph& graph) {
  if (config_.mode == PortfolioMode::kPinZ3) return z3_->find_consistent(graph);
  return grid_->find_consistent(graph);
}

std::string PortfolioFinder::save_state() const {
  const std::string grid_blob = grid_->save_state();
  const std::string z3_blob = z3_->save_state();
  std::string out = "portfolio 1\n";
  out += "grid " + std::to_string(grid_blob.size()) + "\n" + grid_blob + "\n";
  out += "z3 " + std::to_string(z3_blob.size()) + "\n" + z3_blob + "\n";
  return out;
}

void PortfolioFinder::restore_state(const std::string& state) {
  std::size_t pos = 0;
  const std::string header = "portfolio 1\n";
  if (state.compare(0, header.size(), header) != 0) {
    bad_state("bad header (want 'portfolio 1')");
  }
  pos = header.size();
  const std::string grid_blob = read_section(state, pos, "grid");
  const std::string z3_blob = read_section(state, pos, "z3");
  if (pos != state.size()) bad_state("trailing bytes after sections");
  grid_->restore_state(grid_blob);
  z3_->restore_state(z3_blob);
}

}  // namespace compsynth::solver
