// Durable session snapshots: the on-disk form of synth::SessionState.
//
// A synthesis session can span hours of human attention; losing it to a
// crash means re-asking every preference question. A snapshot captures the
// complete mid-run state — preference graph, loop counters and transcript,
// the finder's opaque state blob (RNG stream, version-space bitmap or query
// counters) and the oracle's (interaction counters, per-variant RNG streams)
// — such that Synthesizer::resume continues the identical run.
//
// File layout (docs/PERSISTENCE.md is the field-by-field reference):
//
//   COMPSYNTH-SNAPSHOT 2
//   {"v":2,"sketch":"swan","backend":"grid","seed":1,"iteration":7,
//    "run":"cli","payload_bytes":N,"payload_crc32":"89abcdef"}
//   @synth <bytes>
//   ...
//   @graph <bytes>
//   ...
//   @finder <bytes>
//   ...
//   @oracle <bytes>
//   ...
//   @cache <bytes>
//   ...
//
// Line 1 is the magic + format version. Line 2 is a flat JSON manifest
// (parseable with obs::parse_flat_json) whose payload_bytes/payload_crc32
// cover everything after the manifest's newline — a torn write is detected
// by either a short payload or a CRC mismatch, and recovery falls back to
// the previous snapshot. Sections are length-prefixed byte ranges, so blobs
// may contain anything except nothing at all.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "synth/synthesizer.h"

namespace compsynth::session {

/// Thrown on malformed, truncated, corrupt or incompatible snapshots.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

/// Format version written to line 1. Readers accept exactly the versions
/// they know; a higher version fails with a "newer writer" SnapshotError
/// rather than guessing (docs/PERSISTENCE.md §Versioning).
/// v2 appended the @cache section (solver-cache contents); v1 files — no
/// @cache — are still decoded, yielding an empty cache_state (the cache is
/// a pure accelerator, so resuming cold is safe).
inline constexpr int kSnapshotFormatVersion = 2;

inline constexpr char kSnapshotMagic[] = "COMPSYNTH-SNAPSHOT";

/// Snapshot files use this extension; recovery scans for it.
inline constexpr char kSnapshotExtension[] = ".csnap";

/// Identity of the run a snapshot belongs to. Resume validates sketch /
/// backend / seed against the resuming configuration — continuing a SWAN
/// session against an ABR sketch must fail loudly, not subtly.
struct SnapshotMeta {
  int version = kSnapshotFormatVersion;
  std::string sketch;   ///< sketch name (sketch::Sketch::name)
  std::string backend;  ///< "grid", "z3", ... — free-form back-end tag
  std::uint64_t seed = 0;
  std::string run_id;   ///< obs::RunContext::run_id at capture time
  int iteration = 0;    ///< == state.iterations (duplicated for inspection)
};

struct Snapshot {
  SnapshotMeta meta;
  synth::SessionState state;
};

/// Renders a snapshot to its complete file bytes.
std::string encode(const Snapshot& snap);

/// Parses snapshot bytes; throws SnapshotError on any defect (bad magic,
/// unsupported version, manifest/section syntax, short payload, CRC
/// mismatch, malformed graph).
Snapshot decode(const std::string& bytes);

/// Writes `snap` to `path` atomically: the bytes go to "<path>.tmp" in the
/// same directory, then rename over `path`, so a crash leaves either the old
/// snapshot or the new one — never a torn file. Throws SnapshotError on I/O
/// failure.
void write_file(const Snapshot& snap, const std::string& path);

/// Reads and decodes `path`. Throws SnapshotError on I/O failure or any
/// decode defect.
Snapshot read_file(const std::string& path);

}  // namespace compsynth::session
