// Synthesizer integration tests. Most use the grid back-end (fast, same
// interaction semantics); the Z3 back-end gets the end-to-end smoke suite
// plus dedicated coverage in smoke_test.cpp and the benches.
#include <gtest/gtest.h>

#include <memory>

#include "oracle/ground_truth.h"
#include "oracle/variants.h"
#include "sketch/library.h"
#include "sketch/eval.h"
#include "sketch/parser.h"
#include "solver/equivalence.h"
#include "synth/experiment.h"
#include "synth/synthesizer.h"

namespace compsynth::synth {
namespace {

SynthesisConfig grid_config(std::uint64_t seed) {
  SynthesisConfig c;
  c.seed = seed;
  return c;
}

SynthesisResult run_grid(const sketch::HoleAssignment& target,
                         SynthesisConfig config) {
  const auto& sk = sketch::swan_sketch();
  Synthesizer s = make_grid_synthesizer(sk, config);
  oracle::GroundTruthOracle user(sk, target, config.finder.tie_tolerance);
  return s.run(user);
}

TEST(Synthesizer, ValidatesConfiguration) {
  const auto& sk = sketch::swan_sketch();
  EXPECT_THROW(Synthesizer(sk, nullptr), std::invalid_argument);
  SynthesisConfig c;
  c.initial_scenarios = -1;
  EXPECT_THROW(make_grid_synthesizer(sk, c), std::invalid_argument);
  c = SynthesisConfig{};
  c.pairs_per_iteration = 0;
  EXPECT_THROW(make_grid_synthesizer(sk, c), std::invalid_argument);
  c = SynthesisConfig{};
  c.max_iterations = 0;
  EXPECT_THROW(make_grid_synthesizer(sk, c), std::invalid_argument);
}

TEST(Synthesizer, ConvergesOnPaperTarget) {
  const SynthesisResult r = run_grid(sketch::swan_target(), grid_config(1));
  ASSERT_EQ(r.status, SynthesisStatus::kConverged);
  ASSERT_TRUE(r.objective.has_value());
  EXPECT_GT(r.iterations, 0);
  EXPECT_EQ(static_cast<int>(r.transcript.size()), r.iterations);
  EXPECT_GE(r.interactions, 1);
  EXPECT_GT(r.oracle_comparisons, 0);
}

TEST(Synthesizer, LearnedObjectiveIsConsistentWithFinalGraph) {
  const SynthesisResult r = run_grid(sketch::swan_target(), grid_config(2));
  ASSERT_TRUE(r.objective.has_value());
  const auto& sk = sketch::swan_sketch();
  for (const auto& e : r.graph.edges()) {
    EXPECT_GT(sketch::eval(sk, *r.objective, r.graph.scenario(e.better).metrics),
              sketch::eval(sk, *r.objective, r.graph.scenario(e.worse).metrics));
  }
}

TEST(Synthesizer, ZeroInitialScenariosStillConverges) {
  SynthesisConfig c = grid_config(3);
  c.initial_scenarios = 0;
  const SynthesisResult r = run_grid(sketch::swan_target(), c);
  EXPECT_EQ(r.status, SynthesisStatus::kConverged);
}

TEST(Synthesizer, MultiplePairsPerIterationReducesIterations) {
  SynthesisConfig c1 = grid_config(4);
  SynthesisConfig c3 = grid_config(4);
  c3.pairs_per_iteration = 3;
  double iters1 = 0, iters3 = 0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    c1.seed = 100 + s;
    c3.seed = 100 + s;
    iters1 += run_grid(sketch::swan_target(), c1).iterations;
    iters3 += run_grid(sketch::swan_target(), c3).iterations;
  }
  // Asking 3 preferences per round gathers ~3x information per iteration.
  EXPECT_LT(iters3, iters1);
}

TEST(Synthesizer, IterationLimitReturnsBestEffort) {
  SynthesisConfig c = grid_config(5);
  c.max_iterations = 2;
  const SynthesisResult r = run_grid(sketch::swan_target(), c);
  EXPECT_EQ(r.status, SynthesisStatus::kIterationLimit);
  EXPECT_EQ(r.iterations, 2);
  // Best-effort objective still consistent with everything recorded so far.
  ASSERT_TRUE(r.objective.has_value());
}

TEST(Synthesizer, InexpressibleUserEndsWithoutConsistentCandidate) {
  // A user who ranks by latency only, ignoring throughput entirely: the
  // sketch space (which always rewards throughput strictly unless ranking
  // collapses) cannot satisfy the accumulating tie/preference constraints,
  // and synthesis must terminate rather than loop forever.
  const auto& sk = sketch::swan_sketch();
  SynthesisConfig c = grid_config(6);
  c.max_iterations = 60;
  Synthesizer s = make_grid_synthesizer(sk, c);
  oracle::GroundTruthOracle user(
      sk, sketch::parse_expr("0 - latency", sk), c.finder.tie_tolerance);
  const SynthesisResult r = s.run(user);
  EXPECT_TRUE(r.status == SynthesisStatus::kNoCandidate ||
              r.status == SynthesisStatus::kConverged ||
              r.status == SynthesisStatus::kIterationLimit);
  // Whatever happened, it terminated within the budget.
  EXPECT_LE(r.iterations, 60);
}

TEST(Synthesizer, NoisyUserWithRepairTerminates) {
  const auto& sk = sketch::swan_sketch();
  SynthesisConfig c = grid_config(7);
  c.tolerate_inconsistency = true;
  c.max_iterations = 80;
  Synthesizer s = make_grid_synthesizer(sk, c);
  auto truth = std::make_unique<oracle::GroundTruthOracle>(
      sk, sketch::swan_target(), c.finder.tie_tolerance);
  oracle::NoisyOracle user(std::move(truth), 0.15, 99);
  const SynthesisResult r = s.run(user);
  EXPECT_LE(r.iterations, 80);
  // With repair enabled the loop must not die with NoCandidate immediately.
  EXPECT_NE(r.status, SynthesisStatus::kSolverGaveUp);
}

TEST(Synthesizer, TranscriptRecordsSolverWork) {
  const SynthesisResult r = run_grid(sketch::swan_target(), grid_config(8));
  double total = 0;
  for (const auto& rec : r.transcript) {
    EXPECT_GE(rec.solver_seconds, 0);
    total += rec.solver_seconds;
  }
  EXPECT_NEAR(total, r.total_solver_seconds, 1e-9);
  EXPECT_NEAR(r.average_iteration_seconds, total / r.iterations, 1e-12);
}

TEST(Synthesizer, TranscriptCanBeDisabled) {
  SynthesisConfig c = grid_config(9);
  c.keep_transcript = false;
  const SynthesisResult r = run_grid(sketch::swan_target(), c);
  EXPECT_TRUE(r.transcript.empty());
  EXPECT_GT(r.iterations, 0);
}

// --- Correctness across target variants (the Fig. 3 claim, grid back-end) -----

struct Variant {
  double tp, l, s1, s2;
};

class VariantSweep : public ::testing::TestWithParam<Variant> {};

TEST_P(VariantSweep, SynthesizesRankingEquivalentObjective) {
  const Variant v = GetParam();
  const auto target = sketch::swan_target_with(v.tp, v.l, v.s1, v.s2);
  SynthesisConfig c = grid_config(17);
  const SynthesisResult r = run_grid(target, c);
  ASSERT_EQ(r.status, SynthesisStatus::kConverged);
  ASSERT_TRUE(r.objective.has_value());
  // The learned function need not be hole-identical, only
  // ranking-equivalent (checked exactly via Z3).
  EXPECT_TRUE(solver::ranking_equivalent(sketch::swan_sketch(), *r.objective,
                                         target, c.finder))
      << "target (" << v.tp << "," << v.l << "," << v.s1 << "," << v.s2 << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Fig3Variants, VariantSweep,
    ::testing::Values(Variant{1, 50, 1, 5}, Variant{2, 50, 1, 5},
                      Variant{5, 50, 1, 5}, Variant{1, 20, 1, 5},
                      Variant{1, 80, 1, 5}, Variant{1, 50, 3, 5},
                      Variant{1, 50, 5, 5}, Variant{1, 50, 1, 1},
                      Variant{1, 50, 1, 3}));

// --- Experiment harness ---------------------------------------------------------

TEST(Experiment, AggregatesRepetitions) {
  ExperimentSpec spec{.sketch = sketch::swan_sketch(),
                      .target = sketch::swan_target(),
                      .config = grid_config(42),
                      .backend = Backend::kGrid,
                      .repetitions = 5};
  const ExperimentOutcome out = run_experiment(spec);
  ASSERT_EQ(out.runs.size(), 5u);
  EXPECT_EQ(out.converged_runs, 5);
  EXPECT_EQ(out.correct_runs, 5);
  EXPECT_GT(out.iterations.mean, 0);
  EXPECT_GT(out.iterations.median, 0);
  // Seeds differ across reps, so runs are not all identical.
  bool varied = false;
  for (const auto& run : out.runs) {
    varied = varied || run.iterations != out.runs[0].iterations;
  }
  // (Not guaranteed, but overwhelmingly likely; keep as soft signal.)
  (void)varied;
}

TEST(Experiment, NoisyOracleModeRuns) {
  ExperimentSpec spec{.sketch = sketch::swan_sketch(),
                      .target = sketch::swan_target(),
                      .config = grid_config(43),
                      .backend = Backend::kGrid,
                      .repetitions = 2,
                      .verify_equivalence = false,
                      .oracle_flip_probability = 0.1};
  spec.config.tolerate_inconsistency = true;
  spec.config.max_iterations = 60;
  const ExperimentOutcome out = run_experiment(spec);
  EXPECT_EQ(out.runs.size(), 2u);
}

}  // namespace
}  // namespace compsynth::synth
