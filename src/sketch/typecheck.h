// Static validation of sketch bodies.
//
// Checks that the body is a numeric expression, that every node has the
// arity and operand types its kind requires, and that metric/hole references
// are within the sketch's declarations. Runs automatically from the Sketch
// constructor, so a constructed Sketch is always well-typed.
#pragma once

#include <span>
#include <stdexcept>
#include <string>

#include "sketch/ast.h"

namespace compsynth::sketch {

/// Thrown when a sketch body is ill-typed (wrong arity, boolean where a
/// number is required, out-of-range metric/hole reference, ...).
class TypeError : public std::invalid_argument {
 public:
  explicit TypeError(const std::string& what) : std::invalid_argument(what) {}
};

/// Validates `sketch`'s body; throws TypeError on the first violation.
void typecheck(const Sketch& sketch);

/// Validates a standalone expression against declaration counts.
/// `expect_numeric` selects the required result type of the root.
/// Without hole specs, kChoice selectors can only be range-checked — callers
/// that have the specs must use the hole-spec overload (or typecheck_expr_any)
/// so selector grids are validated too; the parser does this for standalone
/// expressions parsed against a context sketch.
void typecheck_expr(const Expr& root, std::size_t metric_count,
                    std::size_t hole_count, bool expect_numeric);

/// Full validation including choice-selector grids: a kChoice selector's
/// hole must be the integer grid {0, 1, ..., N-1} where N is the number of
/// alternatives.
void typecheck_expr(const Expr& root, std::size_t metric_count,
                    std::span<const HoleSpec> holes, bool expect_numeric);

/// Full validation (selector grids included) of an expression whose root may
/// be either type; returns true when the root is numeric. Used where both
/// numeric and boolean expressions are legal (standalone expression parses).
bool typecheck_expr_any(const Expr& root, std::size_t metric_count,
                        std::span<const HoleSpec> holes);

}  // namespace compsynth::sketch
