file(REMOVE_RECURSE
  "libcompsynth_util.a"
)
