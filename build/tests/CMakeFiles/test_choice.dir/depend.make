# Empty dependencies file for test_choice.
# This may be replaced when dependencies are built.
